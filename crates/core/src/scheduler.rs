//! Pipeline stage: **ORAM-request scheduling** (§3.4, §4.2, Algorithm 1).
//!
//! Wraps the fixed-size [`LabelQueue`] (Fig 7b/9) behind the two selection
//! entry points the controller actually uses:
//!
//! * [`RequestScheduler::select_pending`] — the refill-time top-candidate
//!   pick that maximizes overlap with the path being written back (this is
//!   the scheduling decision the paper's stats are counted over);
//! * [`RequestScheduler::select_initial`] — the pick that starts a burst
//!   after an idle gap, where unrevealed dummy padding is silently put
//!   back rather than executed.
//!
//! Aging/starvation, FIFO tie-breaking and dummy padding semantics live in
//! [`LabelQueue`]; this stage adds the policy wiring and the stats.

use fp_trace::{Counter, EventKind, TraceHandle};

use crate::pipeline::PipelineStage;
use crate::queue::{Entry, EntryKind, LabelQueue};

/// Statistics of the scheduling stage — a view over the trace spine's
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Refill-time scheduling rounds (one per executed access).
    pub rounds: u64,
    /// Ready real candidates summed over those rounds (`ready_reals /
    /// rounds` is the paper's mean schedulable-window occupancy).
    pub ready_reals: u64,
}

/// The request-reordering stage: a label queue plus selection policy.
#[derive(Debug, Clone)]
pub struct RequestScheduler {
    lq: LabelQueue,
    scheduling: bool,
    trace: TraceHandle,
}

impl RequestScheduler {
    /// Creates the stage. `capacity` is the queue size `M`,
    /// `starvation_threshold` the age at which an entry wins outright, and
    /// `scheduling` toggles overlap-maximizing selection (false = ready-FIFO,
    /// the ablation baseline).
    pub fn new(capacity: usize, starvation_threshold: u32, scheduling: bool) -> Self {
        Self {
            lq: LabelQueue::new(capacity, starvation_threshold),
            scheduling,
            trace: TraceHandle::default(),
        }
    }

    /// Attaches a shared trace spine; scheduling counters and events
    /// report there from now on.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Whether overlap-maximizing selection is active.
    pub fn scheduling(&self) -> bool {
        self.scheduling
    }

    /// Selects the pending (next) request during a refill of `current`:
    /// the ready entry with the highest overlap degree, reals outranking
    /// dummy padding. Counts a scheduling round.
    pub fn select_pending(&mut self, levels: u32, current: u64, now_ps: u64) -> Option<Entry> {
        let ready = self
            .lq
            .iter()
            .filter(|e| !e.is_dummy() && e.ready_ps <= now_ps)
            .count() as u64;
        self.trace.add(Counter::SchedReadyReals, ready);
        self.trace.bump(Counter::SchedRounds);
        let picked = self.lq.select(levels, current, now_ps, self.scheduling);
        if let Some(e) = &picked {
            self.trace
                .record(now_ps, EventKind::RequestScheduled { label: e.label });
        }
        picked
    }

    /// Selects the first access of a burst (start-up or after an idle gap):
    /// only real entries count — unrevealed dummy padding is put back
    /// rather than executed, and no scheduling round is charged (the
    /// padding was never part of the externally visible stream).
    pub fn select_initial(&mut self, levels: u32, anchor: u64, now_ps: u64) -> Option<Entry> {
        let mut discarded = Vec::new();
        let picked = loop {
            match self.lq.select(levels, anchor, now_ps, self.scheduling) {
                Some(e) if e.is_dummy() => discarded.push(e),
                other => break other,
            }
        };
        for e in discarded {
            self.lq.restore(e);
        }
        if let Some(e) = &picked {
            self.trace
                .record(now_ps, EventKind::RequestScheduled { label: e.label });
        }
        picked
    }

    /// Inserts a real request (displacing the oldest dummy).
    ///
    /// # Errors
    ///
    /// Returns the kind back when the queue is full of reals — the address
    /// queue must apply backpressure.
    pub fn insert_real(
        &mut self,
        label: u64,
        kind: EntryKind,
        ready_ps: u64,
    ) -> Result<(), EntryKind> {
        self.lq.insert_real(label, kind, ready_ps)
    }

    /// Puts a previously selected entry back (Algorithm 1's swap).
    pub fn restore(&mut self, entry: Entry) {
        self.lq.restore(entry);
    }

    /// Pads the queue with dummies up to capacity (Fig 7b).
    pub fn pad_with(&mut self, fresh_label: impl FnMut() -> u64) {
        self.lq.pad_with(fresh_label);
    }

    /// Whether a real entry can currently be inserted.
    pub fn has_space_for_real(&self) -> bool {
        self.lq.has_space_for_real()
    }

    /// Earliest time any queued real entry becomes schedulable.
    pub fn earliest_real_ready(&self) -> Option<u64> {
        self.lq
            .iter()
            .filter(|e| !e.is_dummy())
            .map(|e| e.ready_ps)
            .min()
    }

    /// Searches for a mid-refill replacement candidate (§3.3); see
    /// [`LabelQueue::take_replacement`].
    #[allow(clippy::too_many_arguments)]
    pub fn take_replacement(
        &mut self,
        levels: u32,
        current: u64,
        window_lo: u64,
        now_ps: u64,
        pending_overlap: u32,
        pending_is_dummy: bool,
        max_cross_level: u32,
    ) -> Option<Entry> {
        self.lq.take_replacement(
            levels,
            current,
            window_lo,
            now_ps,
            pending_overlap,
            pending_is_dummy,
            max_cross_level,
        )
    }

    /// Iterates over the queued entries (stats/tests).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.lq.iter()
    }

    /// Number of real entries queued.
    pub fn real_count(&self) -> usize {
        self.lq.real_count()
    }
}

impl PipelineStage for RequestScheduler {
    type Stats = SchedulerStats;

    fn name(&self) -> &'static str {
        "scheduler"
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            rounds: self.trace.counter(Counter::SchedRounds),
            ready_reals: self.trace.counter(Counter::SchedReadyReals),
        }
    }

    fn reset_stats(&mut self) {
        self.trace
            .reset_counters(&[Counter::SchedRounds, Counter::SchedReadyReals]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(flight: u64) -> EntryKind {
        EntryKind::Real { flight }
    }

    /// (c) Reordering never breaks per-address program order: requests to
    /// the same address share a label (equal overlap with any current
    /// path), so the FIFO tie-break replays them in submission order.
    #[test]
    fn same_address_requests_keep_program_order() {
        let mut s = RequestScheduler::new(8, 64, true);
        // Three same-label (same-address) steps interleaved with traffic to
        // other labels.
        s.insert_real(5, real(0), 0).unwrap();
        s.insert_real(9, real(100), 0).unwrap();
        s.insert_real(5, real(1), 0).unwrap();
        s.insert_real(2, real(101), 0).unwrap();
        s.insert_real(5, real(2), 0).unwrap();
        s.pad_with(|| 3);
        let mut same_addr_order = Vec::new();
        for _ in 0..5 {
            let e = s.select_pending(4, 13, 0).unwrap();
            if e.label == 5 {
                same_addr_order.push(e.kind);
            }
        }
        assert_eq!(
            same_addr_order,
            vec![real(0), real(1), real(2)],
            "equal-label entries must come out FIFO"
        );
    }

    #[test]
    fn select_pending_counts_rounds_and_ready_reals() {
        let mut s = RequestScheduler::new(4, 64, true);
        s.insert_real(1, real(0), 0).unwrap();
        s.insert_real(2, real(1), 0).unwrap();
        s.insert_real(3, real(2), 5_000).unwrap(); // not ready yet
        s.pad_with(|| 0);
        let _ = s.select_pending(3, 1, 0);
        assert_eq!(s.stats().rounds, 1);
        assert_eq!(s.stats().ready_reals, 2, "future entry is not ready");
    }

    #[test]
    fn select_initial_discards_padding_and_charges_no_round() {
        let mut s = RequestScheduler::new(4, 64, true);
        s.pad_with(|| 7);
        s.insert_real(1, real(9), 0).unwrap();
        let picked = s.select_initial(3, 7, 0).unwrap();
        assert_eq!(picked.kind, real(9), "dummies are skipped, not executed");
        assert_eq!(
            s.stats().rounds,
            0,
            "initial pick is not a scheduling round"
        );
        // The discarded dummies went back: queue is full again minus the pick.
        assert_eq!(s.iter().count(), 3);
        assert_eq!(s.real_count(), 0);
    }

    #[test]
    fn select_initial_returns_none_when_only_padding() {
        let mut s = RequestScheduler::new(4, 64, true);
        s.pad_with(|| 1);
        assert!(s.select_initial(3, 1, 0).is_none());
        assert_eq!(s.iter().count(), 4, "padding restored intact");
    }

    #[test]
    fn earliest_real_ready_ignores_dummies() {
        let mut s = RequestScheduler::new(4, 64, true);
        s.pad_with(|| 0);
        assert_eq!(s.earliest_real_ready(), None);
        s.insert_real(1, real(0), 700).unwrap();
        s.insert_real(1, real(1), 300).unwrap();
        assert_eq!(s.earliest_real_ready(), Some(300));
    }

    #[test]
    fn fifo_mode_disables_overlap_ranking() {
        let mut s = RequestScheduler::new(4, 64, false);
        s.insert_real(4, real(1), 0).unwrap(); // poor overlap, first in
        s.insert_real(0, real(2), 0).unwrap(); // perfect overlap with current 1
        s.pad_with(|| 6);
        let picked = s.select_pending(3, 1, 0).unwrap();
        assert_eq!(picked.kind, real(1));
    }
}
