//! The merging-aware cache (§3.5, Fig 8, Eq. 1).
//!
//! Treetop caching pins the top of the tree, which every path touches. After
//! path merging those levels are almost never fetched — the first
//! `len_overlap` levels stay in the stash between consecutive requests — so
//! a treetop cache of the same size mostly holds useless data. The
//! merging-aware cache (MAC) instead *bypasses* levels `0..m1`
//! (`m1 = len_overlap + 1`) and dedicates its capacity to levels
//! `m1..=m2`, organized as a set-associative cache of decrypted buckets
//! awaiting write-back.
//!
//! Set indexing follows the intent of the paper's Eq. (1): each cached level
//! owns a contiguous region of sets, allocated in level order starting at
//! `m1`. Levels whose full bucket population fits are *fully resident*
//! (`m1..=m2`) — this is what lets a 256 KiB MAC match a 1 MiB treetop cache
//! (Fig 13): the capacity covers exactly the levels that merging still
//! fetches. One further level folds into the leftover sets by
//! `y mod region`, with LRU replacement inside each set.
//!
//! Storage is a single flat slab of `num_sets * ways` lines; a set is a
//! fixed-size way slice into it. Lookup and insert touch exactly one such
//! slice (≤ `ways` entries, typically 4) — no per-set heap allocation, no
//! unbounded scans on the per-access hot path.
//!
//! The cacheable window is clamped to the tree's leaf level when the tree
//! depth is known (`*_for_tree` constructors): a large cache on a shallow
//! tree must not dedicate sets to levels that do not exist, or `m2`
//! over-reports coverage and phantom-level buckets would absorb writes.

use fp_path_oram::cache::{BucketCache, WriteOutcome};
use fp_path_oram::path::{index_in_level, node_level};

/// State of a cached bucket line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    /// Holds decrypted blocks awaiting write-back to DRAM.
    Dirty,
    /// The bucket's content was promoted to the stash on a read hit; the
    /// tag remains so later reads of the (consumed) bucket skip DRAM.
    /// Dropped silently on eviction — there is nothing to write back.
    Placeholder,
}

/// One cached bucket line. `node == 0` marks an empty way (real node ids
/// are 1-based heap indices).
#[derive(Debug, Clone, Copy)]
struct Line {
    node: u64,
    last_use: u64,
    state: LineState,
}

const EMPTY: Line = Line {
    node: 0,
    last_use: 0,
    state: LineState::Placeholder,
};

/// The paper's merging-aware, set-associative bucket cache.
///
/// # Example
///
/// ```
/// use fp_core::MergingAwareCache;
/// use fp_path_oram::cache::BucketCache;
///
/// // 1 MiB of 256 B buckets, 4-way, bypassing the top 7 levels.
/// let mut mac = MergingAwareCache::with_capacity_bytes(1 << 20, 256, 4, 7);
/// assert_eq!(mac.m1(), 7);
/// assert_eq!(mac.m2(), 12, "block-granular density: levels 7..=12 resident");
/// // A root write bypasses the cache entirely.
/// assert!(!mac.lookup_for_read(1));
/// ```
#[derive(Debug, Clone)]
pub struct MergingAwareCache {
    /// Flat slab: set `s` occupies `lines[s * ways..(s + 1) * ways]`.
    lines: Vec<Line>,
    ways: usize,
    m1: u32,
    /// Number of fully resident levels starting at `m1` (may be zero).
    full_levels: u32,
    /// Sets available to the folded partial level `m2 + 1` (0 = none).
    partial_sets: u64,
    /// First set of the partial region.
    partial_base: u64,
    tick: u64,
    resident: usize,
}

impl MergingAwareCache {
    /// Creates a MAC with `num_sets` sets of `ways` buckets, caching levels
    /// `m1..=m2` fully (as many whole levels as fit) plus one folded level.
    /// The window is not clamped to any tree depth; prefer
    /// [`MergingAwareCache::new_for_tree`] when the depth is known.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `ways` is zero.
    pub fn new(num_sets: usize, ways: usize, m1: u32) -> Self {
        Self::new_for_tree(num_sets, ways, m1, u32::MAX)
    }

    /// Like [`MergingAwareCache::new`], clamping the cacheable window to
    /// `leaf_level` (the tree's deepest level): levels past the leaf do not
    /// exist, so neither whole-level regions nor the folded partial level
    /// may extend beyond it.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `ways` is zero.
    pub fn new_for_tree(num_sets: usize, ways: usize, m1: u32, leaf_level: u32) -> Self {
        assert!(num_sets > 0, "need at least one set");
        assert!(ways > 0, "need at least one way");
        assert!(m1 >= 1, "the root is always shared; m1 must be at least 1");
        let slots = (num_sets * ways) as u64;
        // Levels m1..=(m1 + k - 1) fully resident need 2^(m1+k) - 2^m1
        // bucket slots; find the largest k that fits (possibly zero for
        // tiny caches — then everything folds into one region), without
        // walking past the leaf level.
        let level_budget = leaf_level.saturating_sub(m1).saturating_add(1);
        let mut full_levels = 0u32;
        while full_levels < 40.min(level_budget)
            && (1u128 << (m1 + full_levels + 1)) - (1u128 << m1) <= slots as u128
        {
            full_levels += 1;
        }
        let used_slots = if full_levels == 0 {
            0
        } else {
            (1u64 << (m1 + full_levels)) - (1u64 << m1)
        };
        let partial_base = used_slots.div_ceil(ways as u64);
        // The folded level is m1 + full_levels; it only gets sets if it
        // exists in the tree.
        let partial_sets = if m1 + full_levels <= leaf_level {
            (num_sets as u64).saturating_sub(partial_base)
        } else {
            0
        };
        Self {
            lines: vec![EMPTY; num_sets * ways],
            ways,
            m1,
            full_levels,
            partial_sets,
            partial_base,
            tick: 0,
            resident: 0,
        }
    }

    /// Sizes the MAC from a byte budget (Fig 13 sweeps 128 KiB – 1 MiB).
    ///
    /// Unlike the treetop cache, the MAC stores only *real* blocks (Fig 9:
    /// each line holds a decrypted data block plus its program address and
    /// label; dummies are regenerated at write-back). At the paper's 50 %
    /// tree utilization a bucket averages `Z/2` real blocks, so a byte of
    /// MAC covers twice the tree footprint a byte of treetop cache does —
    /// this density is what lets a ~256 KiB MAC match a 1 MiB treetop cache
    /// (Fig 13). Tag/metadata SRAM is excluded from the capacity figure, as
    /// in conventional cache sizing.
    pub fn with_capacity_bytes(bytes: u64, bucket_bytes: u64, ways: usize, m1: u32) -> Self {
        Self::with_capacity_bytes_for_tree(bytes, bucket_bytes, ways, m1, u32::MAX)
    }

    /// Like [`MergingAwareCache::with_capacity_bytes`], clamped to a tree
    /// whose deepest level is `leaf_level`.
    pub fn with_capacity_bytes_for_tree(
        bytes: u64,
        bucket_bytes: u64,
        ways: usize,
        m1: u32,
        leaf_level: u32,
    ) -> Self {
        let effective_bucket_cost = (bucket_bytes / 2).max(1);
        let buckets = (bytes / effective_bucket_cost).max(1) as usize;
        let num_sets = (buckets / ways).max(1);
        Self::new_for_tree(num_sets, ways, m1, leaf_level)
    }

    /// Shallowest cached level (`len_overlap + 1`).
    pub fn m1(&self) -> u32 {
        self.m1
    }

    /// Deepest fully resident level (`m1 - 1` when the cache is too small
    /// to hold any whole level).
    pub fn m2(&self) -> u32 {
        // Equals m1 - 1 when full_levels is 0 (guarded by m1 >= 1).
        self.m1 + self.full_levels - 1
    }

    /// Deepest cacheable level (the folded partial level, if it exists).
    pub fn deepest_level(&self) -> u32 {
        if self.partial_sets > 0 {
            self.m1 + self.full_levels
        } else {
            self.m1 + self.full_levels - 1
        }
    }

    /// The set index for a cacheable bucket.
    fn set_index(&self, node: u64) -> usize {
        let x = node_level(node);
        debug_assert!((self.m1..=self.deepest_level()).contains(&x));
        let y = index_in_level(node);
        if self.full_levels > 0 && x < self.m1 + self.full_levels {
            // Fully resident region: one dedicated slot per bucket.
            let slot = (1u64 << x) - (1u64 << self.m1) + y;
            (slot / self.ways as u64) as usize
        } else {
            // Folded partial level.
            (self.partial_base + (y % self.partial_sets)) as usize
        }
    }

    fn cacheable(&self, node: u64) -> bool {
        let level = node_level(node);
        (self.m1..=self.deepest_level()).contains(&level)
    }

    /// The fixed-size way slice of the set holding `node`.
    fn set_lines(&mut self, node: u64) -> &mut [Line] {
        let set = self.set_index(node);
        &mut self.lines[set * self.ways..(set + 1) * self.ways]
    }
}

impl BucketCache for MergingAwareCache {
    // fp-lint: hot-path
    fn lookup_for_read(&mut self, node: u64) -> bool {
        if !self.cacheable(node) {
            return false;
        }
        self.tick += 1;
        let tick = self.tick;
        let lines = self.set_lines(node);
        if let Some(line) = lines.iter_mut().find(|l| l.node == node) {
            // The bucket's blocks are promoted back to the stash (§4); the
            // tag stays as a placeholder so subsequent reads of the
            // consumed bucket also skip DRAM.
            line.state = LineState::Placeholder;
            line.last_use = tick;
            true
        } else {
            false
        }
    }

    // fp-lint: hot-path
    fn insert_on_write(&mut self, node: u64) -> WriteOutcome {
        if !self.cacheable(node) {
            return WriteOutcome::WriteThrough;
        }
        self.tick += 1;
        let tick = self.tick;
        let lines = self.set_lines(node);
        // One pass over the fixed ways: find the matching line, the first
        // empty way, and the LRU victim (placeholders preferred).
        let mut empty: Option<usize> = None;
        let mut victim = 0usize;
        let mut victim_key = (true, u64::MAX);
        for (i, l) in lines.iter().enumerate() {
            if l.node == node {
                let line = &mut lines[i];
                line.last_use = tick;
                line.state = LineState::Dirty;
                return WriteOutcome::Cached;
            }
            if l.node == 0 {
                if empty.is_none() {
                    empty = Some(i);
                }
                continue;
            }
            let key = (l.state == LineState::Dirty, l.last_use);
            if key < victim_key {
                victim_key = key;
                victim = i;
            }
        }
        if let Some(i) = empty {
            lines[i] = Line {
                node,
                last_use: tick,
                state: LineState::Dirty,
            };
            self.resident += 1;
            return WriteOutcome::Cached;
        }
        let old = lines[victim];
        lines[victim] = Line {
            node,
            last_use: tick,
            state: LineState::Dirty,
        };
        match old.state {
            LineState::Dirty => WriteOutcome::CachedEvicting { victim: old.node },
            LineState::Placeholder => WriteOutcome::Cached,
        }
    }

    fn resident(&self) -> usize {
        self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_at(level: u32, y: u64) -> u64 {
        (1u64 << level) + y
    }

    #[test]
    fn bypasses_levels_outside_window() {
        let mut mac = MergingAwareCache::new(64, 4, 3);
        // Level 0 (root) and level 1: bypass.
        assert_eq!(mac.insert_on_write(1), WriteOutcome::WriteThrough);
        assert_eq!(mac.insert_on_write(2), WriteOutcome::WriteThrough);
        // Level m1 caches.
        assert_eq!(mac.insert_on_write(node_at(3, 0)), WriteOutcome::Cached);
        // Deeper than the deepest cacheable level: bypass.
        let deep = node_at(mac.deepest_level() + 1, 0);
        assert_eq!(mac.insert_on_write(deep), WriteOutcome::WriteThrough);
    }

    #[test]
    fn read_hit_leaves_placeholder() {
        let mut mac = MergingAwareCache::new(64, 4, 2);
        let n = node_at(2, 1);
        mac.insert_on_write(n);
        assert_eq!(mac.resident(), 1);
        assert!(mac.lookup_for_read(n));
        // The content moved to the stash, but the tag persists: a later
        // read of the consumed bucket still skips DRAM.
        assert!(mac.lookup_for_read(n));
    }

    #[test]
    fn placeholder_eviction_is_silent() {
        let mut mac = MergingAwareCache::new(1, 1, 2);
        let a = node_at(2, 0);
        let b = node_at(2, 1);
        mac.insert_on_write(a);
        assert!(mac.lookup_for_read(a), "a becomes a placeholder");
        // b displaces the placeholder: no write-back.
        assert_eq!(mac.insert_on_write(b), WriteOutcome::Cached);
        // b is dirty; displacing it must report a victim.
        assert_eq!(
            mac.insert_on_write(a),
            WriteOutcome::CachedEvicting { victim: b }
        );
    }

    #[test]
    fn resident_levels_never_thrash() {
        // 1 MiB, m1 = 7: levels 7..=12 are fully resident — inserting every
        // bucket of those levels must never evict.
        let mut mac = MergingAwareCache::with_capacity_bytes(1 << 20, 256, 4, 7);
        for level in 7..=12u32 {
            for y in 0..(1u64 << level) {
                assert_eq!(
                    mac.insert_on_write(node_at(level, y)),
                    WriteOutcome::Cached,
                    "level {level} y {y}"
                );
            }
        }
        assert_eq!(mac.resident(), (1 << 13) - (1 << 7));
        // And every one of them hits on read.
        assert!(mac.lookup_for_read(node_at(9, 123)));
    }

    #[test]
    fn partial_level_folds_and_evicts() {
        let mut mac = MergingAwareCache::with_capacity_bytes(1 << 20, 256, 4, 7);
        let partial = mac.deepest_level();
        assert_eq!(partial, 13);
        // Insert more partial-level buckets than the leftover capacity
        // holds: eventually an eviction must occur, and the victim is a
        // partial-level bucket (resident levels are untouchable).
        let mut evicted = 0;
        for y in 0..(1u64 << 13) {
            if let WriteOutcome::CachedEvicting { victim } = mac.insert_on_write(node_at(13, y)) {
                assert_eq!(node_level(victim), 13);
                evicted += 1;
            }
        }
        assert!(evicted > 0, "folded level must overflow");
    }

    #[test]
    fn m2_scales_with_capacity() {
        // Block-granular density (2x): 1 MiB -> levels 7..=12;
        // 256 KiB -> 7..=10; 128 KiB -> 7..=9.
        assert_eq!(
            MergingAwareCache::with_capacity_bytes(1 << 20, 256, 4, 7).m2(),
            12
        );
        assert_eq!(
            MergingAwareCache::with_capacity_bytes(256 << 10, 256, 4, 7).m2(),
            10
        );
        assert_eq!(
            MergingAwareCache::with_capacity_bytes(128 << 10, 256, 4, 7).m2(),
            9
        );
    }

    #[test]
    fn lru_eviction_in_partial_region() {
        let mut mac = MergingAwareCache::new(2, 2, 2);
        // Tiny cache: level 2 fully resident? 2 sets * 2 ways = 4 slots;
        // level 2 has 4 buckets -> exactly resident, no partial level.
        assert_eq!(mac.m2(), 2);
        assert_eq!(mac.deepest_level(), 2);
        for y in 0..4 {
            assert_eq!(mac.insert_on_write(node_at(2, y)), WriteOutcome::Cached);
        }
        assert_eq!(mac.resident(), 4);
    }

    #[test]
    fn distinct_buckets_map_to_distinct_slots_in_resident_levels() {
        let mac = MergingAwareCache::with_capacity_bytes(1 << 20, 256, 4, 7);
        use std::collections::HashMap;
        let mut per_set: HashMap<usize, u32> = HashMap::new();
        for level in 7..=12u32 {
            for y in 0..(1u64 << level) {
                *per_set.entry(mac.set_index(node_at(level, y))).or_insert(0) += 1;
            }
        }
        assert!(
            per_set.values().all(|&c| c <= 4),
            "no set oversubscribed in resident levels"
        );
    }

    #[test]
    fn tree_clamp_stops_window_at_leaf_level() {
        // A 1 MiB MAC on a 10-level tree (leaf level 9): unclamped sizing
        // would claim levels 7..=12 resident plus a folded level 13 — four
        // levels that do not exist. The clamped window must end at 9.
        let mac = MergingAwareCache::with_capacity_bytes_for_tree(1 << 20, 256, 4, 7, 9);
        assert_eq!(mac.m1(), 7);
        assert_eq!(mac.m2(), 9, "resident levels stop at the leaf");
        assert_eq!(mac.deepest_level(), 9, "no phantom folded level");
        // A bucket past the leaf is rejected rather than absorbed.
        let mut mac = mac;
        assert_eq!(
            mac.insert_on_write(node_at(10, 0)),
            WriteOutcome::WriteThrough
        );
        // Every real cacheable level still fits fully.
        for level in 7..=9u32 {
            for y in 0..(1u64 << level) {
                assert_eq!(
                    mac.insert_on_write(node_at(level, y)),
                    WriteOutcome::Cached,
                    "level {level} y {y}"
                );
            }
        }
    }

    #[test]
    fn tree_clamp_drops_partial_level_past_leaf() {
        // 2 sets x 2 ways on a leaf-level-1 tree with m1 = 1: level 1 is
        // fully resident (2 buckets); the fold region must NOT claim the
        // nonexistent level 2 (unclamped code reports deepest_level 2).
        let mac = MergingAwareCache::new_for_tree(2, 2, 1, 1);
        assert_eq!(mac.m2(), 1);
        assert_eq!(mac.deepest_level(), 1);
        let unclamped = MergingAwareCache::new(2, 2, 1);
        assert_eq!(unclamped.deepest_level(), 2, "pre-fix behavior");
    }

    #[test]
    fn m1_beyond_leaf_caches_nothing() {
        let mut mac = MergingAwareCache::new_for_tree(8, 2, 5, 3);
        assert_eq!(
            mac.insert_on_write(node_at(5, 0)),
            WriteOutcome::WriteThrough
        );
        assert_eq!(
            mac.insert_on_write(node_at(3, 0)),
            WriteOutcome::WriteThrough
        );
        assert_eq!(mac.resident(), 0);
    }
}
