//! The scheme-agnostic incremental engine abstraction.
//!
//! Every memory system under comparison — insecure DRAM, traditional Path
//! ORAM (with or without a treetop cache), and Fork Path in any
//! configuration — implements [`OramEngine`]: submit requests, pump the
//! pipeline one access at a time with closed-loop feedback, drain
//! completions, and read the shared statistics/trace surface. Drivers
//! (`fp-sim`'s generic system loop, `fp-service`'s shard workers, the
//! bench binaries) are written once against the trait, so a new scheme
//! (e.g. a ring-ORAM engine) drops in without touching them.
//!
//! [`Scheme`] names the engines and [`Scheme::build`] constructs one; the
//! [`registry`] maps the stable scheme names used by `perf_gate` /
//! `service_bench` reports onto configurations.
//!
//! # Example
//!
//! ```
//! use fp_core::engine::{OramEngine, Scheme};
//! use fp_dram::{DramConfig, DramSystem};
//! use fp_path_oram::{NewRequest, NoFeedback, Op, OramConfig};
//!
//! let dram = DramSystem::new(DramConfig::ddr3_1600(2));
//! let mut engine = Scheme::Traditional.build(OramConfig::small_test(), dram, 7);
//! engine
//!     .submit(NewRequest {
//!         addr: 3,
//!         op: Op::Read,
//!         data: vec![],
//!         arrival_ps: 0,
//!         tag: 0,
//!     })
//!     .unwrap();
//! while engine.process_one(&mut NoFeedback).unwrap() {}
//! assert_eq!(engine.drain_completions().len(), 1);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fp_dram::{AccessKind, DramSystem};
use fp_path_oram::{
    BaselineController, Completion, NewRequest, NoFeedback, Op, OramConfig, OramStats,
    ReactiveSource,
};
use fp_trace::{Counter, EventKind, TraceHandle};

use crate::config::{CacheChoice, ForkConfig};
use crate::controller::ForkPathController;
use crate::error::ControllerError;

/// A scheme-agnostic incremental ORAM (or plain-DRAM) engine.
///
/// The contract mirrors the submit/pump model both controllers expose:
/// requests enter through [`OramEngine::submit`] (or
/// [`OramEngine::submit_batch`]); [`OramEngine::process_one`] executes one
/// access end to end, routing completions through the caller's
/// [`ReactiveSource`] so follow-up requests can join in simulated time;
/// [`OramEngine::drain_completions`] collects what has been fed back. The
/// trait is object-safe — drivers hold a `Box<dyn OramEngine + Send>` when
/// the scheme is chosen at run time.
pub trait OramEngine {
    /// Enqueues one request; returns its engine-assigned id.
    ///
    /// # Errors
    ///
    /// Surfaces internal bookkeeping invariant violations.
    fn submit(&mut self, req: NewRequest) -> Result<u64, ControllerError>;

    /// Enqueues a batch, pumping once at the end where the engine supports
    /// it; returns the assigned ids in batch order.
    ///
    /// # Errors
    ///
    /// Surfaces internal bookkeeping invariant violations.
    fn submit_batch(&mut self, batch: Vec<NewRequest>) -> Result<Vec<u64>, ControllerError> {
        batch.into_iter().map(|r| self.submit(r)).collect()
    }

    /// Moves internal pipeline work forward without executing an access.
    /// A no-op for engines without a decoupled pipeline.
    ///
    /// # Errors
    ///
    /// Surfaces internal bookkeeping invariant violations.
    fn pump(&mut self) -> Result<(), ControllerError> {
        Ok(())
    }

    /// Executes one access (or event step) end to end, feeding completions
    /// through `source`. Returns `Ok(false)` when no work remains.
    ///
    /// # Errors
    ///
    /// Surfaces internal bookkeeping invariant violations.
    fn process_one(&mut self, source: &mut dyn ReactiveSource) -> Result<bool, ControllerError>;

    /// Completions produced and fed back since the last drain.
    fn drain_completions(&mut self) -> Vec<Completion>;

    /// Whether submitted work is still queued or in flight.
    fn has_pending_work(&self) -> bool;

    /// Current engine clock, picoseconds.
    fn clock_ps(&self) -> u64;

    /// Aggregate statistics so far.
    fn stats(&self) -> &OramStats;

    /// The engine's trace spine (counters, histograms, event ring).
    fn trace(&self) -> &TraceHandle;

    /// Sizes the trace event ring (0 = counters only).
    fn set_trace_capacity(&mut self, capacity: usize);

    /// The simulated memory system (for command/energy statistics).
    fn dram(&self) -> &DramSystem;

    /// Peak stash occupancy, blocks (0 for engines without a stash).
    fn stash_high_water(&self) -> usize;

    /// Runs until no work remains and returns every flushed completion.
    ///
    /// # Errors
    ///
    /// Surfaces internal bookkeeping invariant violations.
    fn run_to_idle(&mut self) -> Result<Vec<Completion>, ControllerError> {
        while self.process_one(&mut NoFeedback)? {}
        Ok(self.drain_completions())
    }
}

impl<E: OramEngine + ?Sized> OramEngine for Box<E> {
    fn submit(&mut self, req: NewRequest) -> Result<u64, ControllerError> {
        (**self).submit(req)
    }
    fn submit_batch(&mut self, batch: Vec<NewRequest>) -> Result<Vec<u64>, ControllerError> {
        (**self).submit_batch(batch)
    }
    fn pump(&mut self) -> Result<(), ControllerError> {
        (**self).pump()
    }
    fn process_one(&mut self, source: &mut dyn ReactiveSource) -> Result<bool, ControllerError> {
        (**self).process_one(source)
    }
    fn drain_completions(&mut self) -> Vec<Completion> {
        (**self).drain_completions()
    }
    fn has_pending_work(&self) -> bool {
        (**self).has_pending_work()
    }
    fn clock_ps(&self) -> u64 {
        (**self).clock_ps()
    }
    fn stats(&self) -> &OramStats {
        (**self).stats()
    }
    fn trace(&self) -> &TraceHandle {
        (**self).trace()
    }
    fn set_trace_capacity(&mut self, capacity: usize) {
        (**self).set_trace_capacity(capacity)
    }
    fn dram(&self) -> &DramSystem {
        (**self).dram()
    }
    fn stash_high_water(&self) -> usize {
        (**self).stash_high_water()
    }
    fn run_to_idle(&mut self) -> Result<Vec<Completion>, ControllerError> {
        (**self).run_to_idle()
    }
}

impl OramEngine for ForkPathController {
    fn submit(&mut self, req: NewRequest) -> Result<u64, ControllerError> {
        self.submit_tagged(req.addr, req.op, req.data, req.arrival_ps, req.tag)
    }
    fn submit_batch(&mut self, batch: Vec<NewRequest>) -> Result<Vec<u64>, ControllerError> {
        ForkPathController::submit_batch(self, batch)
    }
    fn pump(&mut self) -> Result<(), ControllerError> {
        ForkPathController::pump(self)
    }
    fn process_one(&mut self, source: &mut dyn ReactiveSource) -> Result<bool, ControllerError> {
        ForkPathController::process_one(self, source)
    }
    fn drain_completions(&mut self) -> Vec<Completion> {
        ForkPathController::drain_completions(self)
    }
    fn has_pending_work(&self) -> bool {
        ForkPathController::has_pending_work(self)
    }
    fn clock_ps(&self) -> u64 {
        ForkPathController::clock_ps(self)
    }
    fn stats(&self) -> &OramStats {
        ForkPathController::stats(self)
    }
    fn trace(&self) -> &TraceHandle {
        ForkPathController::trace(self)
    }
    fn set_trace_capacity(&mut self, capacity: usize) {
        ForkPathController::set_trace_capacity(self, capacity)
    }
    fn dram(&self) -> &DramSystem {
        ForkPathController::dram(self)
    }
    fn stash_high_water(&self) -> usize {
        self.state().stash().high_water()
    }
}

impl OramEngine for BaselineController {
    fn submit(&mut self, req: NewRequest) -> Result<u64, ControllerError> {
        Ok(self.submit_tagged(req.addr, req.op, req.data, req.arrival_ps, req.tag))
    }
    fn process_one(&mut self, source: &mut dyn ReactiveSource) -> Result<bool, ControllerError> {
        BaselineController::process_one(self, source).map_err(ControllerError::from)
    }
    fn drain_completions(&mut self) -> Vec<Completion> {
        BaselineController::drain_completions(self)
    }
    fn has_pending_work(&self) -> bool {
        BaselineController::has_pending_work(self)
    }
    fn clock_ps(&self) -> u64 {
        BaselineController::clock_ps(self)
    }
    fn stats(&self) -> &OramStats {
        BaselineController::stats(self)
    }
    fn trace(&self) -> &TraceHandle {
        BaselineController::trace(self)
    }
    fn set_trace_capacity(&mut self, capacity: usize) {
        BaselineController::set_trace_capacity(self, capacity)
    }
    fn dram(&self) -> &DramSystem {
        BaselineController::dram(self)
    }
    fn stash_high_water(&self) -> usize {
        self.state().stash().high_water()
    }
}

/// A queued insecure access, ordered chronologically (then by id) so the
/// engine replays the classic event-interleaved DRAM simulation.
#[derive(Debug, PartialEq, Eq)]
struct PendingAccess {
    arrival_ps: u64,
    id: u64,
    addr: u64,
    op: Op,
    tag: u64,
}

impl Ord for PendingAccess {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival_ps, self.id).cmp(&(other.arrival_ps, other.id))
    }
}

impl PartialOrd for PendingAccess {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An issued access waiting on the memory system, ordered by finish time
/// (derived field order: finish, then arrival/id as deterministic ties).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct OutstandingAccess {
    finish_ps: u64,
    arrival_ps: u64,
    id: u64,
    addr: u64,
    tag: u64,
}

/// The insecure baseline: each LLC miss is one DRAM block access, no
/// obliviousness machinery at all. Accesses are handed to the memory
/// controller in chronological order (an access issues only once simulated
/// time reaches it), so DRAM state advances monotonically exactly as in
/// the pre-engine `run_insecure` driver.
#[derive(Debug)]
pub struct InsecureEngine {
    dram: DramSystem,
    block_bytes: u64,
    /// Not-yet-issued accesses, chronologically ordered.
    pending: BinaryHeap<Reverse<PendingAccess>>,
    /// In-flight accesses, earliest finish first.
    outstanding: BinaryHeap<Reverse<OutstandingAccess>>,
    completions: Vec<Completion>,
    feedback_cursor: usize,
    clock_ps: u64,
    next_id: u64,
    stats: OramStats,
    trace: TraceHandle,
}

impl InsecureEngine {
    /// Creates an insecure engine over `dram` with `block_bytes` per LLC
    /// block.
    pub fn new(dram: DramSystem, block_bytes: usize) -> Self {
        let trace = TraceHandle::default();
        let mut dram = dram;
        dram.attach_trace(trace.clone());
        Self {
            dram,
            block_bytes: block_bytes as u64,
            pending: BinaryHeap::new(),
            outstanding: BinaryHeap::new(),
            completions: Vec::new(),
            feedback_cursor: 0,
            clock_ps: 0,
            next_id: 0,
            stats: OramStats::default(),
            trace,
        }
    }

    fn flush_feedback(&mut self, source: &mut dyn ReactiveSource) -> Result<(), ControllerError> {
        while self.feedback_cursor < self.completions.len() {
            let completion = self.completions[self.feedback_cursor].clone();
            self.feedback_cursor += 1;
            for r in source.on_complete(&completion) {
                OramEngine::submit(self, r)?;
            }
        }
        Ok(())
    }
}

impl OramEngine for InsecureEngine {
    fn submit(&mut self, req: NewRequest) -> Result<u64, ControllerError> {
        let id = self.next_id;
        self.next_id += 1;
        self.trace
            .record(req.arrival_ps, EventKind::RequestSubmitted { id });
        self.pending.push(Reverse(PendingAccess {
            arrival_ps: req.arrival_ps,
            id,
            addr: req.addr,
            op: req.op,
            tag: req.tag,
        }));
        Ok(id)
    }

    fn process_one(&mut self, source: &mut dyn ReactiveSource) -> Result<bool, ControllerError> {
        self.flush_feedback(source)?;
        let next_issue = self.pending.peek().map(|Reverse(p)| p.arrival_ps);
        let next_done = self.outstanding.peek().map(|Reverse(o)| o.finish_ps);
        match (next_issue, next_done) {
            // Issue preference on ties keeps the interleaving chronological.
            (Some(ti), done) if done.is_none_or(|tc| ti <= tc) => {
                let Reverse(p) = self.pending.pop().expect("peeked");
                let kind = match p.op {
                    Op::Read => AccessKind::Read,
                    Op::Write => AccessKind::Write,
                };
                match kind {
                    AccessKind::Read => self.stats.dram_blocks_read += 1,
                    AccessKind::Write => self.stats.dram_blocks_written += 1,
                }
                let res = self.dram.access(ti, p.addr * self.block_bytes, kind);
                self.clock_ps = self.clock_ps.max(ti);
                self.outstanding.push(Reverse(OutstandingAccess {
                    finish_ps: res.finish_ps,
                    arrival_ps: p.arrival_ps,
                    id: p.id,
                    addr: p.addr,
                    tag: p.tag,
                }));
                Ok(true)
            }
            (_, Some(_)) => {
                let Reverse(OutstandingAccess {
                    finish_ps: finish,
                    arrival_ps: arrival,
                    id,
                    addr,
                    tag,
                }) = self.outstanding.pop().expect("peeked");
                self.clock_ps = self.clock_ps.max(finish);
                let latency = finish.saturating_sub(arrival);
                self.stats.completed_requests += 1;
                self.stats.sum_latency_ps += latency;
                self.stats.finish_time_ps = self.stats.finish_time_ps.max(finish);
                self.stats.oram_accesses += 1;
                self.stats.real_accesses += 1;
                self.stats.access_busy_ps += latency;
                // One "bucket" in and out per access so the shared
                // avg-path-length metric reads 1.0 for plain DRAM.
                self.stats.buckets_read += 1;
                self.stats.buckets_written += 1;
                self.trace.bump(Counter::FullReads);
                self.trace
                    .record(finish, EventKind::RequestCompleted { id });
                self.trace.record_latency(latency);
                self.completions.push(Completion {
                    id,
                    addr,
                    data: Vec::new(),
                    arrival_ps: arrival,
                    done_ps: finish,
                    tag,
                });
                self.flush_feedback(source)?;
                Ok(true)
            }
            (None, None) => Ok(false),
            // An issue with nothing outstanding always takes the first arm.
            (Some(_), None) => unreachable!("issue-only case is guard-covered"),
        }
    }

    fn drain_completions(&mut self) -> Vec<Completion> {
        let flushed: Vec<Completion> = self.completions.drain(..self.feedback_cursor).collect();
        self.feedback_cursor = 0;
        flushed
    }

    fn has_pending_work(&self) -> bool {
        !self.pending.is_empty() || !self.outstanding.is_empty()
    }

    fn clock_ps(&self) -> u64 {
        self.clock_ps
    }

    fn stats(&self) -> &OramStats {
        &self.stats
    }

    fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    fn dram(&self) -> &DramSystem {
        &self.dram
    }

    fn stash_high_water(&self) -> usize {
        0
    }
}

/// Which memory system a run uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// No protection: each LLC miss is one DRAM block access.
    Insecure,
    /// Traditional Path ORAM: full path per access, FIFO processing.
    Traditional,
    /// Traditional Path ORAM with a treetop cache of the given capacity.
    TraditionalTreetop {
        /// Cache capacity in bytes.
        bytes: u64,
    },
    /// Fork Path with the paper's default knobs (queue 64, no cache).
    ForkDefault,
    /// Fork Path with explicit knobs.
    Fork(ForkConfig),
}

impl Scheme {
    /// Short label used in reports.
    pub fn label(&self) -> String {
        match self {
            Scheme::Insecure => "insecure".into(),
            Scheme::Traditional => "traditional".into(),
            Scheme::TraditionalTreetop { bytes } => {
                format!("traditional+treetop{}K", bytes >> 10)
            }
            Scheme::ForkDefault => "fork".into(),
            Scheme::Fork(f) => {
                let cache = match f.cache {
                    CacheChoice::None => String::new(),
                    CacheChoice::Treetop { bytes } => format!("+treetop{}K", bytes >> 10),
                    CacheChoice::MergingAware { bytes, .. } => format!("+mac{}K", bytes >> 10),
                };
                format!("fork(q{}){}", f.label_queue_size, cache)
            }
        }
    }

    /// Validates scheme-specific knobs (the fork configuration).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Scheme::Fork(f) => f.validate(),
            _ => Ok(()),
        }
    }

    /// Constructs the engine this scheme names, as a boxed trait object.
    pub fn build(
        &self,
        oram: OramConfig,
        dram: DramSystem,
        seed: u64,
    ) -> Box<dyn OramEngine + Send> {
        match self {
            Scheme::Insecure => Box::new(InsecureEngine::new(dram, oram.block_bytes)),
            Scheme::Traditional => Box::new(BaselineController::new(oram, dram, seed)),
            Scheme::TraditionalTreetop { bytes } => {
                Box::new(BaselineController::with_treetop(oram, dram, seed, *bytes))
            }
            Scheme::ForkDefault => Box::new(ForkPathController::new(
                oram,
                ForkConfig::default(),
                dram,
                seed,
            )),
            Scheme::Fork(f) => Box::new(ForkPathController::new(oram, *f, dram, seed)),
        }
    }
}

/// Fork Path with an explicit label-queue size and no cache.
pub fn fork_with_queue(queue: usize) -> Scheme {
    Scheme::Fork(ForkConfig {
        label_queue_size: queue,
        ..ForkConfig::default()
    })
}

/// Fork Path (queue 64) with a merging-aware cache of `bytes`.
pub fn fork_with_mac(bytes: u64) -> Scheme {
    Scheme::Fork(ForkConfig {
        cache: CacheChoice::MergingAware { bytes, ways: 4 },
        ..ForkConfig::default()
    })
}

/// Fork Path (queue 64) with a treetop cache of `bytes`.
pub fn fork_with_treetop(bytes: u64) -> Scheme {
    Scheme::Fork(ForkConfig {
        cache: CacheChoice::Treetop { bytes },
        ..ForkConfig::default()
    })
}

/// The shared engine registry: every scheme name the harness binaries
/// (`perf_gate`, `service_bench`, the fig bins) accept or print, with its
/// configuration. One place defines the names, so reports stay comparable
/// across binaries and PRs.
pub fn registry() -> Vec<(&'static str, Scheme)> {
    vec![
        ("insecure", Scheme::Insecure),
        ("traditional", Scheme::Traditional),
        (
            "traditional+treetop",
            Scheme::TraditionalTreetop { bytes: 1 << 20 },
        ),
        ("fork", Scheme::ForkDefault),
        ("fork+mac", fork_with_mac(256 << 10)),
        ("fork+treetop", fork_with_treetop(1 << 20)),
        ("fork-best", Scheme::Fork(ForkConfig::paper_best())),
    ]
}

/// Looks a scheme up in the [`registry`] by name.
pub fn by_name(name: &str) -> Option<Scheme> {
    registry()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_dram::DramConfig;

    fn dram() -> DramSystem {
        DramSystem::new(DramConfig::ddr3_1600(2))
    }

    fn drive(mut engine: Box<dyn OramEngine + Send>, n: u64) -> Vec<Completion> {
        for i in 0..n {
            engine
                .submit(NewRequest {
                    addr: i % 16,
                    op: if i % 3 == 0 { Op::Write } else { Op::Read },
                    data: if i % 3 == 0 {
                        vec![i as u8; 16]
                    } else {
                        vec![]
                    },
                    arrival_ps: i * 1_000,
                    tag: i,
                })
                .unwrap();
        }
        let done = engine.run_to_idle().unwrap();
        assert!(!engine.has_pending_work());
        assert_eq!(engine.stats().completed_requests, n);
        assert!(engine.clock_ps() > 0);
        assert_eq!(engine.trace().counter(Counter::RequestsSubmitted), n);
        done
    }

    #[test]
    fn every_registry_scheme_completes_work_through_the_trait() {
        for (name, scheme) in registry() {
            scheme.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let engine = scheme.build(OramConfig::small_test(), dram(), 7);
            let done = drive(engine, 12);
            assert_eq!(done.len(), 12, "{name}");
            let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..12).collect::<Vec<u64>>(), "{name}");
        }
    }

    #[test]
    fn registry_names_and_labels_are_distinct() {
        let reg = registry();
        let names: std::collections::HashSet<_> = reg.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), reg.len());
        let labels: std::collections::HashSet<_> = reg.iter().map(|(_, s)| s.label()).collect();
        assert_eq!(labels.len(), reg.len());
    }

    #[test]
    fn by_name_round_trips() {
        for (name, scheme) in registry() {
            assert_eq!(by_name(name), Some(scheme));
        }
        assert_eq!(by_name("ring-oram"), None);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Scheme::Insecure.label(),
            Scheme::Traditional.label(),
            Scheme::TraditionalTreetop { bytes: 1 << 20 }.label(),
            Scheme::ForkDefault.label(),
            Scheme::Fork(ForkConfig::paper_best()).label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len(), "{labels:?}");
    }

    #[test]
    fn insecure_engine_interleaves_chronologically() {
        let mut engine = InsecureEngine::new(dram(), 64);
        // Submit out of order: the later-submitted request has the earlier
        // arrival and must issue (and finish) first.
        OramEngine::submit(
            &mut engine,
            NewRequest {
                addr: 9,
                op: Op::Read,
                data: vec![],
                arrival_ps: 5_000_000,
                tag: 0,
            },
        )
        .unwrap();
        OramEngine::submit(
            &mut engine,
            NewRequest {
                addr: 1,
                op: Op::Read,
                data: vec![],
                arrival_ps: 0,
                tag: 1,
            },
        )
        .unwrap();
        let done = engine.run_to_idle().unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].tag, 1, "earlier arrival completes first");
        assert!(done[0].done_ps <= done[1].done_ps);
        assert_eq!(engine.stats().avg_path_len(), 1.0);
        assert_eq!(engine.stash_high_water(), 0);
    }

    #[test]
    fn boxed_engine_delegates() {
        let mut engine: Box<dyn OramEngine + Send> =
            Scheme::ForkDefault.build(OramConfig::small_test(), dram(), 3);
        engine.set_trace_capacity(8);
        assert_eq!(engine.trace().capacity(), 8);
        engine.pump().unwrap();
        let ids = engine
            .submit_batch(vec![
                NewRequest {
                    addr: 1,
                    op: Op::Read,
                    data: vec![],
                    arrival_ps: 0,
                    tag: 0,
                },
                NewRequest {
                    addr: 2,
                    op: Op::Read,
                    data: vec![],
                    arrival_ps: 0,
                    tag: 1,
                },
            ])
            .unwrap();
        assert_eq!(ids, vec![0, 1]);
        assert!(engine.has_pending_work());
        let done = engine.run_to_idle().unwrap();
        assert_eq!(done.len(), 2);
    }
}
