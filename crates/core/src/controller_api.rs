//! Introspection and timing-protection surface of [`ForkPathController`] —
//! a child module of `controller` so it can reach the facade's private
//! fields; the access data path itself stays in `controller.rs`.

use fp_dram::DramSystem;
use fp_path_oram::{Completion, OramState, OramStats};
use fp_trace::TraceHandle;

use super::ForkPathController;
use crate::dummy::DummyReplacer;
use crate::error::{must, ControllerError};
use crate::merge::PathMerger;
use crate::pipeline::PipelineStage;
use crate::queue::Entry;
use crate::reactive::{NoFeedback, ReactiveSource};
use crate::scheduler::RequestScheduler;
use crate::writeback::WritebackEngine;

impl ForkPathController {
    /// Whether any real work (queued, stalled, or in flight) exists.
    pub(super) fn has_real_work(&self) -> bool {
        !self.aq.is_empty() || !self.flights.is_empty()
    }

    /// Whether the controller still holds real work — queued, stalled, in
    /// flight, a revealed pending real access, or a completion that has not
    /// yet been routed through feedback (and so cannot be drained yet).
    /// External drivers (the serving layer's shard workers) use this to
    /// decide between admitting the next batch and processing what is
    /// already inside; a request is not done until its completion can
    /// surface, so undrained completions count as pending. One more
    /// [`process_one`](ForkPathController::process_one) call flushes them.
    pub fn has_pending_work(&self) -> bool {
        self.has_real_work()
            || self.current.as_ref().is_some_and(|c| !c.is_dummy())
            || self.feedback_cursor < self.completions.len()
    }

    /// Routes every not-yet-fed completion through `source`, submitting any
    /// follow-up requests it produces, until quiescent.
    pub(super) fn flush_feedback<S: ReactiveSource + ?Sized>(
        &mut self,
        source: &mut S,
    ) -> Result<(), ControllerError> {
        while self.feedback_cursor < self.completions.len() {
            let completion = self.completions[self.feedback_cursor].clone();
            self.feedback_cursor += 1;
            for r in source.on_complete(&completion) {
                self.submit_tagged(r.addr, r.op, r.data, r.arrival_ps, r.tag)?;
            }
        }
        Ok(())
    }

    /// First access after start-up or an idle gap: unrevealed dummy padding
    /// is silently discarded rather than executed.
    pub(super) fn pick_initial(&mut self) -> Result<Option<Entry>, ControllerError> {
        if !self.has_real_work() {
            return Ok(None);
        }
        let levels = self.state.config().levels;
        let anchor = self.merge.prev_label().unwrap_or(0);
        let earliest = self
            .sched
            .earliest_real_ready()
            .or_else(|| self.aq.head_arrival());
        let Some(min_ready) = earliest else {
            return Ok(None);
        };
        let t = self.clock_ps.max(min_ready);
        self.clock_ps = t;
        self.pump()?;
        Ok(self.sched.select_initial(levels, anchor, t))
    }

    /// Statistics so far.
    pub fn stats(&self) -> &OramStats {
        &self.stats
    }

    /// The shared trace spine every pipeline stage, the stash, and the
    /// DRAM system report into. Counters are always exact; the event
    /// ring is empty until [`ForkPathController::set_trace_capacity`]
    /// gives it room.
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Sizes the trace event ring (0 = counters only). The ring keeps
    /// the most recent `capacity` events.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// The DRAM system (for command/energy statistics).
    pub fn dram(&self) -> &DramSystem {
        &self.dram
    }

    /// The trusted ORAM state (for invariant checks in tests).
    pub fn state(&self) -> &OramState {
        &self.state
    }

    /// Current controller clock, picoseconds.
    pub fn clock_ps(&self) -> u64 {
        self.clock_ps
    }

    /// The scheduling stage (per-stage stats / tests).
    pub fn scheduler(&self) -> &RequestScheduler {
        &self.sched
    }

    /// The path-merging stage (per-stage stats / tests).
    pub fn merger(&self) -> &PathMerger {
        &self.merge
    }

    /// The dummy-replacing stage (per-stage stats / tests).
    pub fn dummy_replacer(&self) -> &DummyReplacer {
        &self.dummy
    }

    /// The writeback stage (per-stage stats / tests).
    pub fn writeback(&self) -> &WritebackEngine {
        &self.writeback
    }

    /// Starts recording the externally visible label sequence.
    pub fn enable_label_trace(&mut self) {
        self.label_trace = Some(Vec::new());
    }

    /// The recorded label sequence.
    pub fn label_trace(&self) -> Option<&[u64]> {
        self.label_trace.as_deref()
    }

    /// Number of buckets currently resident in the on-chip cache.
    pub fn cache_resident(&self) -> usize {
        self.writeback.resident()
    }

    /// Completions produced since the last drain. Only completions that
    /// have already been routed through the reactive feedback are returned;
    /// anything newer is delivered on a later drain (after the next
    /// [`ForkPathController::process_one`] flushes it).
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        let flushed: Vec<Completion> = self.completions.drain(..self.feedback_cursor).collect();
        self.feedback_cursor = 0;
        flushed
    }

    /// Enables or disables fixed-rate (timing-protection) mode; see
    /// [`crate::timing::enforce_fixed_rate`]. While enabled, refills always
    /// select a pending request (materializing dummies when idle), so
    /// [`ForkPathController::run_to_idle`] would not terminate — drive the
    /// controller with an explicit horizon instead.
    pub fn set_fixed_rate(&mut self, on: bool) {
        self.fixed_rate = on;
        if !on && self.current.as_ref().is_some_and(|c| c.is_dummy()) && !self.has_real_work() {
            // Drop a revealed-but-unexecuted trailing dummy so the
            // controller can go idle. Its reveal was part of the protected
            // window that just ended.
            self.current = None;
            self.merge.reset();
        }
    }

    /// Executes one dummy ORAM access immediately (timing-protection
    /// padding). Uses the revealed pending access if one exists.
    pub fn force_dummy_access(&mut self) {
        self.force_dummy_at(self.clock_ps);
    }

    /// Like [`ForkPathController::force_dummy_access`], but the access
    /// starts no earlier than `not_before_ps` — the pacing primitive of the
    /// fixed-rate stream (one access per interval, not back-to-back).
    pub fn force_dummy_at(&mut self, not_before_ps: u64) {
        let mut cur = match self.current.take() {
            Some(c) => c,
            None => {
                let label = self.state.random_label();
                Entry::dummy(label, self.clock_ps)
            }
        };
        cur.ready_ps = cur.ready_ps.max(not_before_ps);
        let mut source = NoFeedback;
        must(self.execute(cur, &mut source));
    }

    /// Whether the next schedulable work would leave an idle bus gap longer
    /// than `interval_ps` (used by the fixed-rate enforcer).
    pub fn next_work_gap(&self, interval_ps: u64) -> bool {
        let mut next: Option<u64> = None;
        if let Some(c) = &self.current {
            next = Some(c.ready_ps);
        }
        if let Some(t) = self.sched.earliest_real_ready() {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        if let Some(t) = self.aq.head_arrival() {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        match next {
            Some(t) => t > self.clock_ps + interval_ps,
            None => true,
        }
    }

    /// Copies the cumulative per-stage counters into the aggregate
    /// [`OramStats`] record existing consumers read.
    pub(super) fn sync_stats(&mut self) {
        let s = self.sched.stats();
        self.stats.sched_rounds = s.rounds;
        self.stats.sched_ready_reals = s.ready_reals;
        let d = self.dummy.stats();
        self.stats.dummy_accesses = d.executed;
        self.stats.dummies_replaced = d.replaced;
        let w = self.writeback.stats();
        self.stats.cache_hits = w.cache_hits;
        self.stats.cache_misses = w.cache_misses;
        self.stats.dram_blocks_read = w.dram_blocks_read;
        self.stats.dram_blocks_written = w.dram_blocks_written;
        self.stats.buckets_written = w.buckets_written;
    }
}
