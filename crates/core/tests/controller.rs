//! End-to-end tests of the [`ForkPathController`] facade, exercising all
//! four pipeline stages through the public API only.

use fp_core::{CacheChoice, ForkConfig, ForkPathController, NewRequest, ReactiveSource};
use fp_dram::{DramConfig, DramSystem};
use fp_path_oram::{BaselineController, Completion, Op, OramConfig};

fn dram() -> DramSystem {
    DramSystem::new(DramConfig::ddr3_1600(2))
}

fn fork(cfg: ForkConfig) -> ForkPathController {
    ForkPathController::new(OramConfig::small_test(), cfg, dram(), 11)
}

#[test]
fn write_then_read_roundtrips() {
    let mut ctl = fork(ForkConfig::default());
    ctl.submit(77, Op::Write, vec![0xEE; 16], 0);
    let _ = ctl.run_to_idle();
    ctl.submit(77, Op::Read, vec![], ctl.clock_ps());
    let done = ctl.run_to_idle();
    let read = done.iter().find(|c| c.addr == 77).unwrap();
    assert_eq!(read.data, vec![0xEE; 16]);
    ctl.state().check_invariants().unwrap();
}

#[test]
fn many_interleaved_requests_stay_consistent() {
    let mut ctl = fork(ForkConfig::default());
    // Writes to 32 addresses, then reads, submitted in bulk so
    // scheduling reorders aggressively.
    for a in 0..32u64 {
        ctl.submit(a, Op::Write, vec![a as u8; 16], 0);
    }
    let _ = ctl.run_to_idle();
    for a in 0..32u64 {
        ctl.submit(a, Op::Read, vec![], ctl.clock_ps());
    }
    let done = ctl.run_to_idle();
    for c in done {
        assert_eq!(c.data, vec![c.addr as u8; 16], "addr {}", c.addr);
    }
    ctl.state().check_invariants().unwrap();
}

#[test]
fn merging_shortens_paths_vs_baseline() {
    let mut base = BaselineController::new(OramConfig::small_test(), dram(), 11);
    let mut ctl = fork(ForkConfig::default());
    for a in 0..64u64 {
        base.submit(a, Op::Read, vec![], 0);
        ctl.submit(a, Op::Read, vec![], 0);
    }
    base.run_to_idle();
    ctl.run_to_idle();
    let full = base.stats().avg_path_len();
    let merged = ctl.stats().avg_path_len();
    assert_eq!(full, 10.0, "baseline reads/writes complete paths");
    assert!(merged < full - 1.0, "merged {merged} vs full {full}");
}

#[test]
fn bigger_queue_shortens_paths_further() {
    let run = |m: usize| {
        let mut cfg = ForkConfig::default();
        cfg.label_queue_size = m;
        let mut ctl = fork(cfg);
        for a in 0..200u64 {
            ctl.submit(a % 96, Op::Read, vec![], 0);
        }
        ctl.run_to_idle();
        ctl.stats().avg_path_len()
    };
    let q1 = run(1);
    let q16 = run(16);
    assert!(q16 < q1 - 0.5, "queue 16 ({q16}) beats queue 1 ({q1})");
}

#[test]
fn sparse_arrivals_insert_dummies() {
    let mut ctl = fork(ForkConfig::default());
    // Requests arriving far apart: each refill needs a pending request,
    // so dummies are materialized.
    let gap = 10_000_000; // 10 us
    for a in 0..8u64 {
        ctl.submit(a, Op::Read, vec![], a * gap);
    }
    ctl.run_to_idle();
    assert!(
        ctl.stats().dummy_accesses > 0,
        "sparse arrivals force dummies"
    );
}

#[test]
fn dense_arrivals_avoid_dummies() {
    let mut ctl = fork(ForkConfig::default());
    for a in 0..64u64 {
        ctl.submit(a, Op::Read, vec![], 0);
    }
    ctl.run_to_idle();
    let frac = ctl.stats().dummy_fraction();
    assert!(frac < 0.2, "dense queue rarely needs dummies: {frac}");
}

#[test]
fn replacement_rescues_dummies_in_closed_loop() {
    struct Chaser {
        next_addr: u64,
        remaining: u32,
        gap_ps: u64,
    }
    impl ReactiveSource for Chaser {
        fn on_complete(&mut self, c: &Completion) -> Vec<NewRequest> {
            if self.remaining == 0 {
                return Vec::new();
            }
            self.remaining -= 1;
            self.next_addr += 1;
            vec![NewRequest {
                addr: self.next_addr,
                op: Op::Read,
                data: Vec::new(),
                arrival_ps: c.done_ps + self.gap_ps,
                tag: 0,
            }]
        }
    }
    // A dependent chain of requests, each arriving shortly after the
    // previous completes — inside the refill window.
    let mut ctl = fork(ForkConfig::default());
    let mut src = Chaser {
        next_addr: 100,
        remaining: 60,
        gap_ps: 30_000,
    };
    ctl.submit(100, Op::Read, vec![], 0);
    while ctl.process_one(&mut src).unwrap() {}
    let s = ctl.stats();
    assert!(
        s.dummies_replaced > 0,
        "chained arrivals should replace pending dummies: {s:?}"
    );
    ctl.state().check_invariants().unwrap();
}

#[test]
fn replacing_flag_controls_replacement() {
    let run = |replacing: bool| {
        let mut cfg = ForkConfig::default();
        cfg.replacing = replacing;
        let mut ctl = fork(cfg);
        // Moderate gaps: some arrivals land inside refill windows.
        for a in 0..48u64 {
            ctl.submit(a, Op::Read, vec![], a * 400_000);
        }
        ctl.run_to_idle();
        (ctl.stats().dummies_replaced, ctl.stats().dummy_accesses)
    };
    let (replaced_on, _) = run(true);
    let (replaced_off, dummies_off) = run(false);
    assert!(
        replaced_on > 0,
        "staggered arrivals should replace some dummies"
    );
    assert_eq!(replaced_off, 0, "flag off must never replace");
    assert!(
        dummies_off > 0,
        "without replacing, pending dummies execute"
    );
}

#[test]
fn merging_off_reads_full_paths() {
    let mut cfg = ForkConfig::default();
    cfg.merging = false;
    let mut ctl = fork(cfg);
    for a in 0..16u64 {
        ctl.submit(a, Op::Read, vec![], 0);
    }
    ctl.run_to_idle();
    assert_eq!(ctl.stats().avg_path_len(), 10.0);
}

#[test]
fn mac_reduces_dram_traffic() {
    let run = |cache: CacheChoice| {
        let mut cfg = ForkConfig::default();
        cfg.cache = cache;
        cfg.mac_bypass_levels = Some(3);
        let mut ctl = fork(cfg);
        for round in 0..4u64 {
            for a in 0..48u64 {
                ctl.submit(a, Op::Read, vec![], round);
            }
        }
        ctl.run_to_idle();
        (
            ctl.stats().dram_blocks_read,
            ctl.stats().dram_blocks_written,
        )
    };
    let (plain_r, plain_w) = run(CacheChoice::None);
    let (mac_r, mac_w) = run(CacheChoice::MergingAware {
        bytes: 8 << 10,
        ways: 4,
    });
    assert!(mac_r < plain_r, "MAC cuts reads: {mac_r} vs {plain_r}");
    assert!(mac_w < plain_w, "MAC cuts writes: {mac_w} vs {plain_w}");
}

#[test]
fn label_trace_is_roughly_uniform() {
    let mut ctl = fork(ForkConfig::default());
    ctl.enable_label_trace();
    for a in 0..256u64 {
        ctl.submit(a % 100, Op::Read, vec![], 0);
    }
    ctl.run_to_idle();
    let trace = ctl.label_trace().unwrap().to_vec();
    assert_eq!(trace.len() as u64, ctl.stats().oram_accesses);
    assert!(
        trace.len() > 100,
        "expect a decent sample, got {}",
        trace.len()
    );
    let leaves = ctl.state().config().leaf_count();
    // Coarse uniformity: split leaf space into 8 octants.
    let mut counts = [0u32; 8];
    for &l in &trace {
        counts[(l * 8 / leaves) as usize] += 1;
    }
    let expected = trace.len() as f64 / 8.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    // 7 dof, 99.9th percentile ~ 24.3.
    assert!(chi2 < 24.3, "label octants skewed: chi2={chi2} {counts:?}");
}

#[test]
fn hazard_forwarding_and_cancellation_complete_requests() {
    // Queue of one plus a blocker keeps w1 resident in the address
    // queue, exercising the §4 hazard rules.
    let mut cfg = ForkConfig::default();
    cfg.label_queue_size = 1;
    let mut ctl = fork(cfg);
    let _blocker = ctl.submit(900, Op::Read, vec![], 0);
    let w1 = ctl.submit(5, Op::Write, vec![1; 16], 0);
    let w2 = ctl.submit(5, Op::Write, vec![2; 16], 10);
    let r = ctl.submit(5, Op::Read, vec![], 20);
    let done = ctl.run_to_idle();
    let by_id = |id: u64| done.iter().find(|c| c.id == id).unwrap();
    // w1 cancelled by w2 (Write-before-Write): acknowledged with no data.
    assert!(by_id(w1).data.is_empty());
    // r forwarded from w2 (Write-before-Read).
    assert_eq!(by_id(r).data, vec![2; 16]);
    let _ = by_id(w2);
    // A later read (after the write completed) sees the stored value.
    ctl.submit(5, Op::Read, vec![], ctl.clock_ps());
    let done = ctl.run_to_idle();
    assert_eq!(done[0].data, vec![2; 16]);
}

#[test]
fn stash_fast_path_completions_survive_the_final_drain() {
    // Same-address reads serialize in the address queue; when the first
    // access completes, its block sits in the stash, so each follower is
    // served by pump()'s fast path without an access of its own. Those
    // completions are produced *between* feedback flushes — if the
    // controller then goes idle, a drain must still surface every one of
    // them (they used to strand behind the feedback cursor).
    let mut ctl = fork(ForkConfig::default());
    let mut ids = Vec::new();
    for i in 0..4u64 {
        ids.push(ctl.submit(42, Op::Read, vec![], i));
    }
    let done = ctl.run_to_idle();
    assert!(!ctl.has_pending_work());
    let mut done_ids: Vec<u64> = done.iter().map(|c| c.id).collect();
    done_ids.sort_unstable();
    assert_eq!(
        done_ids, ids,
        "every same-address read must surface exactly once"
    );
    assert_eq!(ctl.drain_completions().len(), 0, "nothing may linger");
    ctl.state().check_invariants().unwrap();
}

#[test]
fn pending_work_covers_undrained_completions() {
    // External drivers (the serving layer's shard workers) loop on
    // `has_pending_work` and drain after each `process_one`. When the
    // *final* process_one executes an access, its completion is pushed
    // but not yet routed through feedback, so `drain_completions` cannot
    // return it yet. `has_pending_work` must report true for that state,
    // or the driver exits one completion short (requests silently lost
    // at the tail of a trace replay).
    use fp_core::NoFeedback;
    let mut ctl = fork(ForkConfig::default());
    let mut ids = Vec::new();
    for i in 0..6u64 {
        ids.push(ctl.submit(i * 7, Op::Read, vec![], i * 1_000));
    }
    let mut done = Vec::new();
    while ctl.has_pending_work() {
        let _ = ctl.process_one(&mut NoFeedback).unwrap();
        done.extend(ctl.drain_completions());
    }
    let mut done_ids: Vec<u64> = done.iter().map(|c| c.id).collect();
    done_ids.sort_unstable();
    assert_eq!(
        done_ids, ids,
        "driver-style loop must surface every request"
    );
    assert_eq!(ctl.drain_completions().len(), 0, "nothing may linger");
}

#[test]
fn idle_gap_resets_merging_cleanly() {
    let mut ctl = fork(ForkConfig::default());
    ctl.submit(1, Op::Write, vec![7; 16], 0);
    let _ = ctl.run_to_idle();
    // Long idle; next burst must still behave correctly.
    let later = ctl.clock_ps() + 1_000_000_000;
    ctl.submit(1, Op::Read, vec![], later);
    let done = ctl.run_to_idle();
    assert_eq!(done[0].data, vec![7; 16]);
    ctl.state().check_invariants().unwrap();
}

#[test]
fn stash_stays_bounded() {
    let mut ctl = fork(ForkConfig::default());
    for i in 0..400u64 {
        ctl.submit(
            i % 80,
            if i % 3 == 0 { Op::Write } else { Op::Read },
            vec![3; 16],
            0,
        );
    }
    ctl.run_to_idle();
    let hw = ctl.state().stash().high_water();
    assert!(hw < 200, "stash high water {hw}");
    ctl.state().check_invariants().unwrap();
}

#[test]
fn stage_stats_match_aggregate_record() {
    use fp_core::PipelineStage;
    let mut ctl = fork(ForkConfig::default());
    for a in 0..48u64 {
        ctl.submit(a, Op::Read, vec![], a * 200_000);
    }
    ctl.run_to_idle();
    let agg = ctl.stats().clone();
    assert_eq!(agg.sched_rounds, ctl.scheduler().stats().rounds);
    assert_eq!(agg.sched_ready_reals, ctl.scheduler().stats().ready_reals);
    assert_eq!(agg.dummy_accesses, ctl.dummy_replacer().stats().executed);
    assert_eq!(agg.dummies_replaced, ctl.dummy_replacer().stats().replaced);
    assert_eq!(agg.buckets_written, ctl.writeback().stats().buckets_written);
    assert_eq!(
        agg.dram_blocks_read,
        ctl.writeback().stats().dram_blocks_read
    );
    assert_eq!(
        ctl.merger().stats().merged_reads + ctl.merger().stats().full_reads,
        agg.oram_accesses,
        "every access takes exactly one read-floor decision"
    );
}

#[test]
fn submit_batch_matches_sequential_submits() {
    // The batch handoff (one pump after N enqueues) must complete the same
    // requests with the same data as N pumped submits; ids stay in order.
    let run = |batched: bool| {
        let mut ctl = fork(ForkConfig::default());
        for a in 0..16u64 {
            ctl.submit(a, Op::Write, vec![a as u8; 16], 0);
        }
        ctl.run_to_idle();
        let t = ctl.clock_ps();
        if batched {
            let batch: Vec<NewRequest> = (0..16u64)
                .map(|a| NewRequest {
                    addr: a,
                    op: Op::Read,
                    data: vec![],
                    arrival_ps: t,
                    tag: a,
                })
                .collect();
            let ids = ctl.submit_batch(batch).unwrap();
            assert_eq!(ids.len(), 16);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids in submit order");
        } else {
            for a in 0..16u64 {
                ctl.submit(a, Op::Read, vec![], t);
            }
        }
        let mut done: Vec<(u64, Vec<u8>)> = ctl
            .run_to_idle()
            .into_iter()
            .map(|c| (c.addr, c.data))
            .collect();
        done.sort();
        done
    };
    let batched = run(true);
    assert_eq!(batched.len(), 16);
    for (a, data) in &batched {
        assert_eq!(data[0], *a as u8);
    }
    assert_eq!(batched, run(false));
}

#[test]
fn invalid_config_surfaces_typed_error() {
    use fp_core::ControllerError;
    let mut cfg = ForkConfig::default();
    cfg.label_queue_size = 0;
    let err = ForkPathController::try_new(OramConfig::small_test(), cfg, dram(), 1).unwrap_err();
    assert!(matches!(err, ControllerError::InvalidConfig(_)), "{err}");
}

mod plb_tests {
    use super::*;

    #[test]
    fn plb_cuts_posmap_accesses() {
        let run = |plb_blocks: usize| {
            let cfg = OramConfig::small_test();
            let fork_cfg = ForkConfig {
                plb_blocks,
                ..ForkConfig::default()
            };
            let dram = DramSystem::new(DramConfig::ddr3_1600(2));
            let mut ctl = ForkPathController::new(cfg, fork_cfg, dram, 44);
            // Strided reads with posmap-block reuse.
            for round in 0..4u64 {
                for a in 0..64u64 {
                    ctl.submit(a, Op::Read, vec![], round);
                }
                ctl.run_to_idle();
            }
            (
                ctl.stats().accesses_per_request(),
                ctl.state().stash().high_water(),
            )
        };
        let (without, _) = run(0);
        let (with, hw) = run(32);
        assert!(
            with < without,
            "PLB should cut accesses/request: {with:.2} vs {without:.2}"
        );
        assert!(hw < 200, "pinning must not blow up the stash: {hw}");
    }

    #[test]
    fn plb_preserves_correctness() {
        let cfg = OramConfig::small_test();
        let fork_cfg = ForkConfig {
            plb_blocks: 16,
            ..ForkConfig::default()
        };
        let dram = DramSystem::new(DramConfig::ddr3_1600(2));
        let mut ctl = ForkPathController::new(cfg, fork_cfg, dram, 45);
        for a in 0..80u64 {
            ctl.submit(a, Op::Write, vec![a as u8; 16], 0);
        }
        ctl.run_to_idle();
        for a in 0..80u64 {
            ctl.submit(a, Op::Read, vec![], ctl.clock_ps());
        }
        for c in ctl.run_to_idle() {
            assert_eq!(c.data[0], c.addr as u8);
        }
        ctl.state().check_invariants().unwrap();
    }
}

mod super_block_tests {
    use super::*;

    fn ctl_with_sb(sb: u64) -> ForkPathController {
        let mut cfg = OramConfig::small_test();
        cfg.super_block = sb;
        let dram = DramSystem::new(DramConfig::ddr3_1600(2));
        ForkPathController::new(cfg, ForkConfig::default(), dram, 61)
    }

    #[test]
    fn super_blocks_preserve_ram_semantics() {
        for sb in [2u64, 4, 8] {
            let mut ctl = ctl_with_sb(sb);
            for a in 0..96u64 {
                ctl.submit(a, Op::Write, vec![a as u8; 16], 0);
            }
            ctl.run_to_idle();
            for a in 0..96u64 {
                ctl.submit(a, Op::Read, vec![], ctl.clock_ps());
            }
            for c in ctl.run_to_idle() {
                assert_eq!(c.data[0], c.addr as u8, "sb={sb} addr={}", c.addr);
            }
            ctl.state().check_invariants().unwrap();
        }
    }

    #[test]
    fn super_blocks_prefetch_sequential_access() {
        // Sequential scans hit the prefetched group members on chip.
        let run = |sb: u64| {
            let mut ctl = ctl_with_sb(sb);
            for a in 0..128u64 {
                ctl.submit(a, Op::Read, vec![], 0);
            }
            ctl.run_to_idle();
            ctl.stats().accesses_per_request()
        };
        let plain = run(1);
        let grouped = run(4);
        assert!(
            grouped < plain - 0.1,
            "super blocks should cut accesses on sequential scans: {grouped:.2} vs {plain:.2}"
        );
    }

    #[test]
    fn interleaved_group_members_stay_consistent() {
        // Writes and reads ping-ponging within one group exercise the
        // group-serialization path.
        let mut ctl = ctl_with_sb(4);
        for round in 0..6u8 {
            for a in 0..4u64 {
                ctl.submit(a, Op::Write, vec![round * 10 + a as u8; 16], ctl.clock_ps());
            }
        }
        ctl.run_to_idle();
        for a in 0..4u64 {
            ctl.submit(a, Op::Read, vec![], ctl.clock_ps());
        }
        for c in ctl.run_to_idle() {
            assert_eq!(c.data[0], 50 + c.addr as u8);
        }
        ctl.state().check_invariants().unwrap();
    }
}
