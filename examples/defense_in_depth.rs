//! Defense in depth: Fork Path ORAM combined with the two orthogonal
//! countermeasures the paper points to in §2.2 — Merkle-tree integrity
//! verification (active attacks) and a fixed-rate request stream (timing
//! channel).
//!
//! Run with: `cargo run --release --example defense_in_depth`

use fork_path_oram::core::timing::{idle_cost, NoFeedback};
use fork_path_oram::core::{ForkConfig, ForkPathController};
use fork_path_oram::dram::{DramConfig, DramSystem};
use fork_path_oram::path_oram::integrity::MerkleTree;
use fork_path_oram::path_oram::{Op, OramConfig};

fn main() {
    // --- 1. Integrity: a Merkle tree over the ORAM tree -----------------
    println!("=== Merkle-tree integrity (vs active attacks) ===");
    let levels = 9;
    let mut merkle = MerkleTree::new(levels, [0xfeed, 0xbeef]);
    // Writes ride along with ORAM refills: hash the bucket, rehash the path.
    let leaf_node = (1u64 << levels) + 123;
    merkle.update_bucket(leaf_node, b"encrypted bucket v1");
    merkle.rehash_path(levels, 123);
    merkle
        .verify_bucket(leaf_node, b"encrypted bucket v1")
        .unwrap();
    println!(
        "honest bucket        : verified (root {:016x})",
        merkle.root()
    );

    // An active adversary replays the stale version after an update.
    merkle.update_bucket(leaf_node, b"encrypted bucket v2");
    merkle.rehash_path(levels, 123);
    match merkle.verify_bucket(leaf_node, b"encrypted bucket v1") {
        Err(e) => println!("replayed stale bucket: rejected ({e})"),
        Ok(()) => unreachable!("replay must be detected"),
    }

    // --- 2. Timing protection: a fixed-rate ORAM stream ------------------
    println!("\n=== Fixed-rate stream (vs the timing channel) ===");
    let dram = DramSystem::new(DramConfig::ddr3_1600(2));
    let mut ctl =
        ForkPathController::new(OramConfig::small_test(), ForkConfig::default(), dram, 99);

    // A short program burst...
    for a in 0..16u64 {
        ctl.submit(a, Op::Write, vec![a as u8; 16], 0);
    }
    let mut src = NoFeedback;
    while ctl
        .process_one(&mut src)
        .expect("controller invariant violated")
    {}
    let busy_end = ctl.clock_ps();

    // ...followed by 100 us of program silence that must stay invisible.
    let report = idle_cost(&mut ctl, 100_000_000, 1_000_000);
    println!(
        "program burst ended at     : {:.1} us",
        busy_end as f64 / 1e6
    );
    println!("protected idle window      : 100 us at 1 access/us");
    println!("padding dummies issued     : {}", report.forced_dummies);
    println!(
        "avg path per padded access : {:.2} buckets (merging still applies)",
        ctl.stats().avg_path_len()
    );

    // The data survives the padded period, of course.
    ctl.submit(7, Op::Read, vec![], ctl.clock_ps());
    let done = ctl.run_to_idle();
    assert_eq!(done.last().unwrap().data[0], 7);
    ctl.state().check_invariants().unwrap();
    println!("post-protection read check : OK");
}
