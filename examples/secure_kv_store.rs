//! A toy oblivious key-value store on top of Fork Path ORAM — the
//! cloud-outsourcing scenario the paper's introduction motivates: even an
//! adversary who sees every DRAM address learns nothing about *which* keys
//! a client touches.
//!
//! Run with: `cargo run --release --example secure_kv_store`

use std::collections::HashMap;

use fork_path_oram::core::{ForkConfig, ForkPathController};
use fork_path_oram::dram::{DramConfig, DramSystem};
use fork_path_oram::path_oram::{Op, OramConfig};

/// Fixed-size record store: key -> slot, values padded to one ORAM block.
struct ObliviousKvStore {
    ctl: ForkPathController,
    directory: HashMap<String, u64>, // held inside the trusted boundary
    next_slot: u64,
    block_bytes: usize,
}

impl ObliviousKvStore {
    fn new(seed: u64) -> Self {
        let cfg = OramConfig::small_test();
        let block_bytes = cfg.block_bytes;
        let dram = DramSystem::new(DramConfig::ddr3_1600(2));
        let ctl = ForkPathController::new(cfg, ForkConfig::default(), dram, seed);
        Self {
            ctl,
            directory: HashMap::new(),
            next_slot: 0,
            block_bytes,
        }
    }

    fn put(&mut self, key: &str, value: &[u8]) {
        assert!(value.len() < self.block_bytes, "value must fit one block");
        let slot = *self.directory.entry(key.to_string()).or_insert_with(|| {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        });
        // Length-prefixed payload, padded by the controller to block size.
        let mut payload = vec![value.len() as u8];
        payload.extend_from_slice(value);
        self.ctl
            .submit(slot, Op::Write, payload, self.ctl.clock_ps());
        self.ctl.run_to_idle();
    }

    fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        let slot = *self.directory.get(key)?;
        self.ctl.submit(slot, Op::Read, vec![], self.ctl.clock_ps());
        let done = self.ctl.run_to_idle();
        let block = &done.last()?.data;
        let len = block[0] as usize;
        Some(block[1..1 + len].to_vec())
    }
}

fn main() {
    let mut store = ObliviousKvStore::new(7);

    println!("populating the oblivious store...");
    store.put("alice", b"pk:ed25519:aa11");
    store.put("bob", b"pk:ed25519:bb22");
    store.put("carol", b"pk:ed25519:cc33");
    store.put("alice", b"pk:ed25519:aa99"); // update in place

    println!("querying...");
    assert_eq!(store.get("alice").unwrap(), b"pk:ed25519:aa99");
    assert_eq!(store.get("bob").unwrap(), b"pk:ed25519:bb22");
    assert_eq!(store.get("carol").unwrap(), b"pk:ed25519:cc33");
    assert!(store.get("mallory").is_none());

    // A burst of hot-key queries: the access pattern in DRAM stays
    // indistinguishable from any other query mix of the same length.
    for _ in 0..20 {
        let _ = store.get("alice");
    }

    let s = store.ctl.stats();
    println!("\nqueries served              : {}", s.completed_requests);
    println!("ORAM accesses on the bus    : {}", s.oram_accesses);
    println!("on-chip (stash) fast hits   : {}", s.stash_hits);
    println!("avg buckets / phase         : {:.2}", s.avg_path_len());
    store.ctl.state().check_invariants().expect("invariants");
    println!("invariants                  : OK");
}
