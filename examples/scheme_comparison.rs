//! Compare the memory schemes of the paper's evaluation on one workload:
//! insecure DRAM, traditional Path ORAM, treetop caching, and Fork Path
//! with and without the merging-aware cache.
//!
//! Run with: `cargo run --release --example scheme_comparison [MixN]`

use fork_path_oram::core::ForkConfig;
use fork_path_oram::sim::experiment::{run_mix, MissBudget};
use fork_path_oram::sim::{Scheme, SystemConfig};
use fork_path_oram::workloads::mixes;

fn main() {
    let mix_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Mix3".to_string());
    let mix = mixes::by_name(&mix_name).unwrap_or_else(|| {
        eprintln!("unknown mix {mix_name}; expected Mix1..Mix10");
        std::process::exit(1);
    });

    let cfg = SystemConfig::paper_default();
    println!(
        "workload {} ({}), 4-core out-of-order, 4 GB ORAM, 2x DDR3-1600\n",
        mix.name,
        mix.programs
            .iter()
            .map(|p| p.name)
            .collect::<Vec<_>>()
            .join(" + ")
    );
    println!(
        "{:<28} {:>12} {:>8} {:>10} {:>9} {:>9}",
        "scheme", "latency(ns)", "path", "slowdown", "energy", "dummies"
    );

    let mut insecure_exec = 1.0f64;
    for scheme in [
        Scheme::Insecure,
        Scheme::Traditional,
        Scheme::TraditionalTreetop { bytes: 1 << 20 },
        Scheme::ForkDefault,
        Scheme::Fork(ForkConfig::paper_best()),
    ] {
        let r = run_mix(&cfg, &scheme, &mix, MissBudget::Fast);
        if scheme == Scheme::Insecure {
            insecure_exec = r.exec_time_ps as f64;
        }
        println!(
            "{:<28} {:>12.1} {:>8.2} {:>9.1}x {:>7.2}mJ {:>9}",
            r.scheme,
            r.oram_latency_ns,
            r.avg_path_len,
            r.exec_time_ps as f64 / insecure_exec,
            r.energy_mj(),
            r.dummy_accesses
        );
    }
    println!("\n(Fork Path's advantage grows with memory intensity — try Mix1 vs Mix3.)");
}
