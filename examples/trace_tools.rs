//! Capture, inspect, save, and replay LLC-miss traces.
//!
//! Run with: `cargo run --release --example trace_tools [MixN]`
//!
//! Demonstrates the `fp_workloads::trace` workflow: record a deterministic
//! miss trace from a Table 2 mix, print its statistics, serialize it to the
//! line format, and replay it through the Fork Path controller.

use fork_path_oram::core::{ForkConfig, ForkPathController};
use fork_path_oram::dram::{DramConfig, DramSystem};
use fork_path_oram::path_oram::{Op, OramConfig};
use fork_path_oram::workloads::cpu::MultiCoreWorkload;
use fork_path_oram::workloads::{mixes, trace::Trace};

fn main() {
    let mix_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Mix9".to_string());
    let mut mix = mixes::by_name(&mix_name).unwrap_or_else(|| {
        eprintln!("unknown mix {mix_name}");
        std::process::exit(1);
    });
    // Shrink the footprint so the replay fits the demo ORAM
    // (4 cores x 2^9 blocks = 2^11 addresses).
    for p in &mut mix.programs {
        p.working_set_blocks = p.working_set_blocks.min(1 << 9);
    }

    // --- capture ----------------------------------------------------------
    let wl = MultiCoreWorkload::from_mix(&mix, 100, 2026);
    let trace = Trace::capture(wl, format!("{mix_name}/seed2026"));
    println!("captured {:>5} misses from {}", trace.len(), trace.source);
    println!("  distinct blocks : {}", trace.footprint());
    println!("  write fraction  : {:.1}%", trace.write_fraction() * 100.0);
    println!("  mean core gap   : {:.0} ns", trace.mean_core_gap_ns());

    // --- serialize / parse -------------------------------------------------
    let text = trace.to_text();
    println!("  serialized size : {} bytes", text.len());
    let parsed = Trace::from_text(&text).expect("round-trip");
    assert_eq!(parsed, trace);

    // --- replay ------------------------------------------------------------
    let dram = DramSystem::new(DramConfig::ddr3_1600(2));
    let mut oram_cfg = OramConfig::small_test();
    oram_cfg.data_blocks = 1 << 11; // fits the four per-core regions
    oram_cfg.levels = 10;
    let mut ctl = ForkPathController::new(oram_cfg, ForkConfig::default(), dram, 1);
    for r in &parsed.records {
        let (op, data) = if r.is_write {
            (Op::Write, vec![r.addr as u8; 16])
        } else {
            (Op::Read, vec![])
        };
        ctl.submit(r.addr, op, data, r.issue_ps);
    }
    let done = ctl.run_to_idle();
    let s = ctl.stats();
    println!("\nreplayed through Fork Path ORAM:");
    println!("  completions     : {}", done.len());
    println!(
        "  ORAM accesses   : {} ({} dummies)",
        s.oram_accesses, s.dummy_accesses
    );
    println!("  avg path length : {:.2} buckets", s.avg_path_len());
    println!("  avg latency     : {:.0} ns", s.avg_latency_ns());
    ctl.state().check_invariants().expect("invariants hold");
    println!("  invariants      : OK");
}
