//! Quickstart: store and fetch data through a Fork Path ORAM controller.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Demonstrates the core promise of the library: a standard read/write
//! memory interface whose external access pattern is oblivious, with the
//! Fork Path optimizations (path merging, request scheduling, dummy
//! replacing) cutting the memory traffic of every access.

use fork_path_oram::core::{ForkConfig, ForkPathController};
use fork_path_oram::dram::{DramConfig, DramSystem};
use fork_path_oram::path_oram::{CipherMode, Op, OramConfig};

fn main() {
    // A small ORAM with real counter-mode encryption of the tree contents.
    let mut oram_cfg = OramConfig::small_test();
    oram_cfg.cipher_mode = CipherMode::Real;

    let dram = DramSystem::new(DramConfig::ddr3_1600(2));
    let mut ctl = ForkPathController::new(oram_cfg, ForkConfig::default(), dram, 42);

    // Write a few records.
    println!("writing 16 records...");
    for i in 0u64..16 {
        let payload = vec![i as u8; 16];
        ctl.submit(i, Op::Write, payload, ctl.clock_ps());
    }
    ctl.run_to_idle();

    // Read them back — every access re-encrypts and re-shuffles.
    println!("reading them back...");
    for i in 0u64..16 {
        ctl.submit(i, Op::Read, vec![], ctl.clock_ps());
    }
    let done = ctl.run_to_idle();
    for c in &done {
        assert_eq!(c.data, vec![c.addr as u8; 16], "record {} intact", c.addr);
    }

    let s = ctl.stats();
    println!("\nall {} records verified.", done.len());
    println!("ORAM accesses executed      : {}", s.oram_accesses);
    println!("  of which dummies          : {}", s.dummy_accesses);
    println!(
        "avg buckets touched / phase : {:.2} (full path would be {})",
        s.avg_path_len(),
        ctl.state().config().path_len()
    );
    println!("avg request latency         : {:.1} ns", s.avg_latency_ns());
    println!(
        "stash high water            : {} blocks",
        ctl.state().stash().high_water()
    );
    ctl.state()
        .check_invariants()
        .expect("Path ORAM invariants hold");
    println!("Path ORAM invariants        : OK");
}
