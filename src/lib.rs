//! # fork-path-oram
//!
//! Facade crate for the Fork Path ORAM (MICRO 2015) reproduction workspace.
//!
//! Re-exports the subsystem crates so examples and downstream users can
//! depend on a single crate:
//!
//! * [`crypto`] — counter-mode probabilistic encryption, PRF, seedable RNGs.
//! * [`dram`] — DDR3 timing/energy simulator with subtree layout.
//! * [`path_oram`] — baseline Path ORAM: tree, stash, recursion, controller.
//! * [`core`] — the paper's contribution: path merging, request scheduling,
//!   dummy replacing, merging-aware caching, the Fork Path controller.
//! * [`workloads`] — synthetic SPEC/PARSEC stand-ins and the CPU frontend.
//! * [`service`] — sharded concurrent serving layer: bounded queues with
//!   backpressure, deadlines, drain/shutdown, aggregate service stats.
//! * [`net`] — network front end: framed wire protocol, threaded TCP
//!   server over the service, pipelined client.
//! * [`sim`] — full-system simulation, metrics, and energy accounting.
//! * [`stats`] — the statistical tests behind the security audit.
//! * [`trace`] — the shared tracing/metrics spine (counters, histograms,
//!   typed event ring) every subsystem reports into.
//!
//! The facade also hosts [`propcheck`], the small seeded property-testing
//! driver the invariant suite runs on.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub mod propcheck;

pub use fp_core as core;
pub use fp_crypto as crypto;
pub use fp_dram as dram;
pub use fp_net as net;
pub use fp_path_oram as path_oram;
pub use fp_service as service;
pub use fp_sim as sim;
pub use fp_stats as stats;
pub use fp_trace as trace;
pub use fp_workloads as workloads;
