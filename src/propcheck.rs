//! A minimal in-repo property-testing driver.
//!
//! Replaces the external `proptest` dependency for this workspace's
//! invariant suite. A property is a closure over a [`Gen`] — a seeded
//! source of structured random values backed by [`fp_crypto::Xoshiro256`],
//! the same deterministic RNG the simulator itself uses. [`run_cases`]
//! executes the property across a fixed number of derived seeds and, on
//! failure, reports the property name and the failing seed so the case can
//! be replayed exactly (`Gen::new(seed)`), serving the role of proptest's
//! regression file without one.
//!
//! No shrinking is attempted: generators here draw from small domains, so
//! failing cases are already near-minimal.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use fp_crypto::{SplitMix64, Xoshiro256};

/// A seeded generator of structured random test inputs.
#[derive(Debug)]
pub struct Gen {
    rng: Xoshiro256,
}

impl Gen {
    /// A generator replaying the exact value stream of `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256::new(seed),
        }
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }

    /// Uniform draw from the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.next_below(hi - lo)
    }

    /// Uniform `u32` draw from `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` draw from `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_below(2) == 1
    }

    /// `Some(f(self))` with probability 1/2.
    pub fn option<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> Option<T> {
        if self.bool() {
            Some(f(self))
        } else {
            None
        }
    }

    /// A vector of `len ∈ [min, max)` elements drawn from `f`.
    pub fn vec<T>(&mut self, min: usize, max: usize, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let len = self.range_usize(min, max);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Derives a per-case seed from the property name and case index, so every
/// property sees an independent, reproducible stream.
fn case_seed(name: &str, case: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index through SplitMix64.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    SplitMix64::new(h ^ case).next_u64()
}

/// Runs `prop` for `cases` independently seeded inputs. On a failing case
/// the panic is re-raised after reporting the property name and the seed
/// that replays it.
///
/// # Panics
///
/// Re-raises the property's panic on the first failing case.
pub fn run_cases(name: &str, cases: u64, mut prop: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut Gen::new(seed))));
        if let Err(panic) = outcome {
            // fp-lint: allow(stdout-in-library) reason=replay instructions printed only when a property already failed
            eprintln!("property `{name}` failed on case {case}: replay with Gen::new({seed})");
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_the_same_stream() {
        let mut a = Gen::new(42);
        let mut b = Gen::new(42);
        for _ in 0..100 {
            assert_eq!(a.range(3, 4096), b.range(3, 4096));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut g = Gen::new(7);
        for _ in 0..1000 {
            let v = g.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_length_in_bounds() {
        let mut g = Gen::new(9);
        for _ in 0..100 {
            let v = g.vec(1, 5, |g| g.below(10));
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn distinct_properties_get_distinct_seeds() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failing_property_reports_and_reraises() {
        run_cases("always_fails", 3, |_| panic!("boom"));
    }
}
