//! Integration tests for the fault-tolerance subsystem: deterministic
//! fault injection (`fp_core::FaultInjector`) driving the fp-service
//! supervision paths. The scenarios the serving layer must survive:
//!
//! * a hard integrity fault kills one shard — producers get `ShardDown`
//!   (not an endless `Busy` livelock), survivors keep serving, and `serve`
//!   returns a structured [`ServeError::Shards`] with partial stats;
//! * a worker panic is caught, the shard is marked dead, and the final
//!   snapshot survives (poison-tolerant locks) instead of cascading;
//! * a forced stash overflow surfaces the Path ORAM failure mode as a
//!   structured error;
//! * transient faults absorbed by retries leave the run `Ok` but the
//!   affected shards report `Degraded` with nonzero fault counters;
//! * at fault rate 0.0 the injector is byte-identical to the bare engine
//!   (propcheck property over random schemes/seeds/streams).
//!
//! Every serve-based test runs under a watchdog thread so a regression to
//! the old dead-shard hang fails the test quickly instead of wedging CI.

#![allow(clippy::disallowed_methods)] // watchdog deadlines; see the fp-lint pragmas below

use std::sync::mpsc;
// fp-lint: allow(wall-clock-in-sim) reason=watchdog deadline bounding a hung test, not a simulated measurement
use std::time::{Duration, Instant};

use fork_path_oram::core::engine::registry;
use fork_path_oram::core::{FaultConfig, FaultInjector, OramEngine};
use fork_path_oram::dram::{DramConfig, DramSystem};
use fork_path_oram::path_oram::{NewRequest, Op, OramConfig};
use fork_path_oram::propcheck::{run_cases, Gen};
use fork_path_oram::service::{
    OramService, ServeError, ServiceConfig, ServiceRequest, ShardEngine, ShardHealth,
    ShardSnapshot, SubmitError,
};
use fork_path_oram::workloads::mixes;

/// The shrunken service geometry the service-level suite uses.
fn small_cfg(shards: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::fast_test(shards);
    cfg.oram.data_blocks = 1 << 12;
    cfg.oram.levels = 11;
    cfg.oram.onchip_posmap_entries = 1 << 6;
    cfg
}

/// Runs `f` on a helper thread and fails the test if it neither finishes
/// nor panics within `secs` — the bound that turns a livelock regression
/// into a fast, attributable failure.
fn with_watchdog<T: Send + 'static>(
    name: &str,
    secs: u64,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            worker.join().expect("watchdog worker");
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The closure panicked: propagate its panic.
            worker.join().expect("watchdog worker panicked");
            unreachable!("disconnected sender implies a panic");
        }
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("{name}: hung past {secs}s watchdog"),
    }
}

// ---------- hard fault: fail-fast + survivor continuity --------------

/// A mid-run hard integrity fault on shard 0 must (a) surface
/// `SubmitError::ShardDown` to producers instead of letting them retry
/// `Busy` forever, (b) leave shard 1 serving and `Healthy`, and (c) turn
/// the run into a structured `ServeError::Shards` carrying partial stats —
/// no panic, no hang.
#[test]
fn integrity_failure_kills_one_shard_while_survivor_serves() {
    let err = with_watchdog("integrity-failover", 120, || {
        let mut cfg = small_cfg(2);
        cfg.fault = Some(FaultConfig {
            fail_at_access: Some(4),
            ..FaultConfig::default()
        });
        cfg.fault_shard = Some(0);
        let mut saw_down = false;
        let mut survivor_accepted = 0u64;
        let err = OramService::serve(cfg, |h| {
            // Feed both shards; with 2 shards, even addresses route to
            // shard 0 (the doomed one) and odd to shard 1 (the survivor).
            // fp-lint: allow(wall-clock-in-sim) reason=watchdog deadline so a livelock fails the test instead of hanging CI
            let deadline = Instant::now() + Duration::from_secs(60);
            let mut tag = 0u64;
            // fp-lint: allow(wall-clock-in-sim) reason=watchdog deadline check, see above
            while Instant::now() < deadline {
                match h.submit(ServiceRequest::read(0, 0, tag)) {
                    Err(SubmitError::ShardDown) => saw_down = true,
                    Ok(_) | Err(SubmitError::Busy) => {}
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
                if h.submit(ServiceRequest::read(1, 0, tag)).is_ok() {
                    survivor_accepted += 1;
                }
                tag += 1;
                if saw_down && survivor_accepted >= 16 {
                    break;
                }
                std::thread::yield_now();
            }
        })
        .expect_err("a dead shard must fail the run");
        assert!(
            saw_down,
            "dead shard must surface ShardDown, not endless Busy"
        );
        assert!(survivor_accepted >= 16, "survivor must keep accepting");
        err
    });
    match err {
        ServeError::Shards { failures, stats } => {
            assert_eq!(failures.len(), 1, "exactly one shard died");
            assert_eq!(failures[0].shard, 0);
            assert!(!failures[0].panicked);
            assert!(
                failures[0].error.contains("integrity"),
                "unexpected failure text: {}",
                failures[0].error
            );
            assert_eq!(stats.shards_with_health(ShardHealth::Dead), 1);
            assert_eq!(stats.shards_with_health(ShardHealth::Healthy), 1);
            assert_eq!(stats.shard_failovers(), 1);
            assert_eq!(stats.per_shard[0].health, ShardHealth::Dead);
            assert!(
                stats.per_shard[0]
                    .fault
                    .as_deref()
                    .is_some_and(|f| f.contains("integrity")),
                "dead shard records its fault"
            );
            // The survivor drained everything it accepted.
            assert_eq!(stats.per_shard[1].health, ShardHealth::Healthy);
            assert!(stats.per_shard[1].counters.completed >= 16);
            // Partial stats still serialize.
            fork_path_oram::stats::json::validate(&stats.to_json()).unwrap();
        }
        other => panic!("expected ServeError::Shards, got: {other}"),
    }
}

// ---------- worker panic: supervision + poison tolerance -------------

/// An injected worker panic must be caught by the supervisor: the run
/// returns `ServeError::Shards` with `panicked = true` and partial stats
/// (instead of the old cascading `expect("counters poisoned")` panic in
/// the final snapshot), and the survivor still completes its work.
#[test]
fn worker_panic_yields_structured_error_with_partial_stats() {
    let err = with_watchdog("panic-supervision", 120, || {
        let mut cfg = small_cfg(2);
        cfg.fault = Some(FaultConfig {
            panic_at_access: Some(2),
            ..FaultConfig::default()
        });
        cfg.fault_shard = Some(0);
        OramService::serve(cfg, |h| {
            for tag in 0..16u64 {
                for addr in [0u64, 1] {
                    while h.submit(ServiceRequest::read(addr, 0, tag)) == Err(SubmitError::Busy) {
                        std::thread::yield_now();
                    }
                }
            }
        })
        .expect_err("a panicking worker must fail the run")
    });
    match err {
        ServeError::Shards { failures, stats } => {
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].shard, 0);
            assert!(failures[0].panicked);
            assert!(
                failures[0].error.contains("injected worker panic"),
                "unexpected panic text: {}",
                failures[0].error
            );
            assert_eq!(stats.per_shard[0].health, ShardHealth::Dead);
            assert_eq!(stats.per_shard[1].health, ShardHealth::Healthy);
            // The survivor's 16 submissions all completed.
            assert!(stats.per_shard[1].counters.completed >= 16);
            assert!(stats.faults_injected() >= 1);
        }
        other => panic!("expected ServeError::Shards, got: {other}"),
    }
}

/// Poison recovery at the lock level: a thread that panics while holding
/// the shared counter/completion locks must not take the snapshot (or the
/// front-end accounting) down with it.
#[test]
fn snapshot_survives_poisoned_shard_locks() {
    let cfg = small_cfg(1);
    let (_engine, shared) = ShardEngine::new(&cfg, 0);
    shared.note_enqueued();
    // Poison both front-end mutexes.
    for _ in 0..2 {
        let shared = &shared;
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _counters = shared.counters.lock().unwrap();
            panic!("poison the counters lock");
        }));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _done = shared.completions.lock().unwrap();
            panic!("poison the completions lock");
        }));
    }
    assert!(shared.counters.is_poisoned());
    assert!(shared.completions.is_poisoned());
    // Accounting and snapshots keep working on the poisoned locks.
    shared.note_enqueued();
    let snap = ShardSnapshot::capture(0, &shared);
    assert_eq!(snap.counters.enqueued, 2);
    assert_eq!(snap.health, ShardHealth::Healthy);
}

// ---------- stash overflow ------------------------------------------

/// Path ORAM's inherent failure mode, forced deterministically: the run
/// ends with a structured stash-overflow error, not a panic or a hang.
#[test]
fn forced_stash_overflow_surfaces_structured_error() {
    let err = with_watchdog("stash-overflow", 120, || {
        let mut cfg = small_cfg(1);
        cfg.fault = Some(FaultConfig {
            overflow_at_access: Some(1),
            ..FaultConfig::default()
        });
        OramService::serve(cfg, |h| {
            for tag in 0..8u64 {
                while h.submit(ServiceRequest::read(tag * 3, 0, tag)) == Err(SubmitError::Busy) {
                    std::thread::yield_now();
                }
            }
        })
        .expect_err("forced overflow must fail the run")
    });
    match err {
        ServeError::Shards { failures, .. } => {
            assert_eq!(failures.len(), 1);
            assert!(!failures[0].panicked);
            assert!(
                failures[0].error.contains("stash overflow"),
                "unexpected failure text: {}",
                failures[0].error
            );
        }
        other => panic!("expected ServeError::Shards, got: {other}"),
    }
}

// ---------- transient faults: degraded, not dead ---------------------

/// Transient faults absorbed by the retry budget leave the run `Ok`: the
/// full budget completes, affected shards report `Degraded`, the fault
/// counters are nonzero, and nothing failed over. Rerunning reproduces the
/// identical outcome (fault injection is part of the deterministic seed).
#[test]
fn absorbed_transient_faults_degrade_but_complete() {
    let run = || {
        let mut cfg = small_cfg(2);
        let mut fault = FaultConfig::transient(0xD15EA5E, 0.25);
        fault.max_retries = 12; // survival probability ~1 per access
        cfg.fault = Some(fault);
        OramService::run_closed_loop(cfg, &mixes::all()[0].programs, 200)
            .expect("deep retries must absorb every fault")
    };
    let stats = run();
    assert_eq!(stats.completed(), 200);
    assert!(stats.faults_injected() > 0, "rate 0.25 must fire");
    assert!(stats.fault_retries() >= stats.faults_injected());
    assert_eq!(stats.shard_failovers(), 0);
    assert_eq!(stats.shards_with_health(ShardHealth::Dead), 0);
    assert!(
        stats.shards_with_health(ShardHealth::Degraded) >= 1,
        "shards that absorbed faults must report degraded"
    );
    assert_eq!(
        stats.fingerprint(),
        run().fingerprint(),
        "fault injection must be deterministic per seed"
    );
}

// ---------- rate 0.0 transparency ------------------------------------

/// Propcheck property: a `FaultInjector` at fault rate 0.0 (no triggers)
/// is byte-identical to the bare engine — same completions, same stats,
/// same clock, same stash high-water — across random schemes, seeds, and
/// request streams.
#[test]
fn fault_injector_at_rate_zero_is_transparent() {
    run_cases("fault-injector-rate-zero-identity", 6, |g: &mut Gen| {
        let reg = registry();
        let scheme = reg[g.range_usize(0, reg.len() - 1)].1.clone();
        let seed = g.below(u64::MAX);
        let blocks = OramConfig::small_test().data_blocks;
        let reqs: Vec<NewRequest> = (0..g.range(32, 96))
            .map(|i| NewRequest {
                addr: g.below(blocks),
                op: Op::Read,
                data: Vec::new(),
                arrival_ps: i * 750,
                tag: i,
            })
            .collect();
        let build = || {
            let dram = DramSystem::new(DramConfig::ddr3_1600(2));
            scheme.build(OramConfig::small_test(), dram, seed)
        };
        let mut bare = build();
        let mut wrapped = FaultInjector::new(
            build(),
            FaultConfig {
                seed: g.below(u64::MAX),
                ..FaultConfig::default()
            },
        );
        for r in &reqs {
            bare.submit(r.clone()).unwrap();
            wrapped.submit(r.clone()).unwrap();
        }
        let a = bare.run_to_idle().unwrap();
        let b = wrapped.run_to_idle().unwrap();
        assert_eq!(a, b, "completions diverged under a rate-0 injector");
        assert_eq!(bare.clock_ps(), wrapped.clock_ps());
        assert_eq!(bare.stats(), wrapped.stats());
        assert_eq!(bare.stash_high_water(), wrapped.stash_high_water());
    });
}

/// The same transparency at the service level: a configured-but-inert
/// fault injector (rate 0.0) leaves the closed-loop fingerprint identical
/// to an unwrapped run.
#[test]
fn inert_fault_config_leaves_service_fingerprint_unchanged() {
    let run = |fault: Option<FaultConfig>| {
        let mut cfg = small_cfg(2);
        cfg.fault = fault;
        OramService::run_closed_loop(cfg, &mixes::all()[0].programs, 128)
            .expect("closed loop must not fail")
    };
    let bare = run(None);
    let inert = run(Some(FaultConfig::default()));
    assert_eq!(bare.fingerprint(), inert.fingerprint());
    assert_eq!(inert.faults_injected(), 0);
    assert_eq!(inert.shards_with_health(ShardHealth::Healthy), 2);
}
