//! Wire-protocol integration tests for `fp-net`: a propcheck round-trip
//! property over randomly generated frames, and adversarial byte-level
//! decoding — every malformed input must map to a typed [`WireError`],
//! never a panic, a hang, or a silently wrong frame.

use fork_path_oram::net::wire::{read_frame, write_frame, MAGIC, MAX_FRAME, VERSION};
use fork_path_oram::net::{
    Frame, WireError, WireHealth, WireOp, WireRequest, WireResponse, WireStatus,
};
use fork_path_oram::propcheck::{run_cases, Gen};

/// A random frame of any protocol kind, with field values spanning the
/// full encodable range (including empty and near-maximum payloads).
fn arbitrary_frame(g: &mut Gen) -> Frame {
    let payload = |g: &mut Gen| {
        let n = if g.bool() {
            g.range_usize(0, 64)
        } else {
            g.range_usize(0, 4096)
        };
        let b = g.below(256) as u8;
        vec![b; n]
    };
    match g.below(9) {
        0 => Frame::Hello {
            version: g.below(u64::from(u16::MAX)) as u16,
        },
        1 => Frame::HelloAck {
            version: g.below(u64::from(u16::MAX)) as u16,
            data_blocks: g.below(u64::MAX),
            block_bytes: g.range_u32(1, 1 << 16),
            shards: g.range_u32(1, 64),
        },
        2 => Frame::Request(WireRequest {
            tag: g.below(u64::MAX),
            op: if g.bool() {
                WireOp::Read
            } else {
                WireOp::Write
            },
            addr: g.below(u64::MAX),
            deadline_rel_ns: g.below(u64::MAX),
            payload: payload(g),
        }),
        3 => Frame::Response(WireResponse {
            tag: g.below(u64::MAX),
            status: WireStatus::ALL[g.range_usize(0, WireStatus::ALL.len() - 1)],
            latency_ps: g.below(u64::MAX),
            data: payload(g),
        }),
        4 => Frame::StatsReq,
        5 => Frame::StatsResp {
            // Arbitrary ASCII (the field is a string, not validated JSON).
            json: (0..g.range_usize(0, 512))
                .map(|_| (g.range(0x20, 0x7E) as u8) as char)
                .collect(),
        },
        6 => Frame::HealthReq,
        7 => Frame::HealthResp {
            shards: g.vec(0, 16, |g| match g.below(3) {
                0 => WireHealth::Healthy,
                1 => WireHealth::Degraded,
                _ => WireHealth::Dead,
            }),
        },
        _ => Frame::Shutdown,
    }
}

// ---------- round-trip properties -----------------------------------

/// encode -> read_frame is the identity for every frame kind and field
/// range, and the reported byte counts agree on both sides.
#[test]
fn arbitrary_frames_round_trip() {
    run_cases("net-wire-round-trip", 256, |g: &mut Gen| {
        let frame = arbitrary_frame(g);
        let mut buf = Vec::new();
        let n = frame.encode(&mut buf);
        assert_eq!(n, buf.len(), "encode must report exactly what it wrote");
        let (got, consumed) = read_frame(&mut buf.as_slice())
            .expect("well-formed frame decodes")
            .expect("non-empty stream");
        assert_eq!(consumed, n, "decode must consume exactly one frame");
        assert_eq!(got, frame, "round trip must be the identity");
    });
}

/// A stream of several frames decodes back frame-by-frame, in order, and
/// ends with a clean EOF (`Ok(None)`), never an error.
#[test]
fn frame_streams_round_trip_in_order() {
    run_cases("net-wire-stream", 64, |g: &mut Gen| {
        let frames = g.vec(1, 8, arbitrary_frame);
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).expect("vec write cannot fail");
        }
        let mut stream = buf.as_slice();
        for want in &frames {
            let (got, _) = read_frame(&mut stream)
                .expect("stream frame decodes")
                .expect("frame present");
            assert_eq!(&got, want);
        }
        assert_eq!(
            read_frame(&mut stream).unwrap(),
            None,
            "clean EOF after the last frame"
        );
    });
}

// ---------- malformed input -----------------------------------------

/// A frame with the body (and the embedded length prefix) of `frame`, but
/// with `mutate` applied to the raw bytes before decoding.
fn corrupt(
    frame: &Frame,
    mutate: impl FnOnce(&mut Vec<u8>),
) -> Result<Option<(Frame, usize)>, WireError> {
    let mut buf = Vec::new();
    frame.encode(&mut buf);
    mutate(&mut buf);
    read_frame(&mut buf.as_slice())
}

#[test]
fn zero_length_prefix_is_oversize() {
    let err = corrupt(&Frame::StatsReq, |b| {
        b[0..4].copy_from_slice(&0u32.to_le_bytes())
    })
    .expect_err("zero length cannot hold a kind byte");
    assert!(matches!(err, WireError::Oversize { len: 0, .. }), "{err}");
}

#[test]
fn oversize_length_prefix_is_rejected_before_allocating() {
    let len = (MAX_FRAME as u32) + 1;
    let err = corrupt(&Frame::StatsReq, |b| {
        b[0..4].copy_from_slice(&len.to_le_bytes())
    })
    .expect_err("length above MAX_FRAME");
    assert!(
        matches!(err, WireError::Oversize { len: l, max } if l == u64::from(len) && max == MAX_FRAME),
        "{err}"
    );
}

#[test]
fn unknown_frame_kind_is_typed() {
    let err = corrupt(&Frame::StatsReq, |b| b[4] = 0xEE).expect_err("undefined kind byte");
    assert_eq!(err, WireError::UnknownKind(0xEE));
}

#[test]
fn hello_with_wrong_magic_is_rejected() {
    let err = corrupt(&Frame::Hello { version: VERSION }, |b| {
        // The magic is the first body field after [len][kind].
        b[5..9].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    })
    .expect_err("wrong magic");
    assert_eq!(err, WireError::BadMagic { got: 0xDEAD_BEEF });
    // The right magic still decodes, so the mutation above is the only
    // thing the test rejects.
    let mut ok = Vec::new();
    Frame::Hello { version: VERSION }.encode(&mut ok);
    assert_eq!(ok[5..9], MAGIC.to_le_bytes());
}

#[test]
fn request_with_unknown_op_code_is_typed() {
    let req = Frame::Request(WireRequest {
        tag: 1,
        op: WireOp::Read,
        addr: 2,
        deadline_rel_ns: 0,
        payload: Vec::new(),
    });
    // Body layout: tag u64, op u8 — the op byte sits at offset 4+1+8.
    let err = corrupt(&req, |b| b[13] = 9).expect_err("undefined op code");
    assert_eq!(err, WireError::UnknownOp(9));
}

#[test]
fn response_with_unknown_status_code_is_typed() {
    let resp = Frame::Response(WireResponse {
        tag: 1,
        status: WireStatus::Ok,
        latency_ps: 0,
        data: Vec::new(),
    });
    // Body layout: tag u64, status u8 — offset 4+1+8.
    let err = corrupt(&resp, |b| b[13] = 0xFF).expect_err("undefined status code");
    assert_eq!(err, WireError::UnknownStatus(0xFF));
}

#[test]
fn health_resp_with_unknown_health_code_is_typed() {
    let resp = Frame::HealthResp {
        shards: vec![WireHealth::Healthy],
    };
    let err = corrupt(&resp, |b| {
        let last = b.len() - 1;
        b[last] = 7;
    })
    .expect_err("undefined health code");
    assert_eq!(err, WireError::UnknownHealth(7));
}

#[test]
fn stats_resp_with_invalid_utf8_is_typed() {
    let resp = Frame::StatsResp { json: "ok".into() };
    let err = corrupt(&resp, |b| {
        let last = b.len() - 1;
        b[last] = 0xFF; // lone 0xFF is never valid UTF-8
    })
    .expect_err("invalid UTF-8 in a string field");
    assert_eq!(err, WireError::BadUtf8);
}

/// Truncating a well-formed frame at ANY byte boundary inside the body
/// yields a typed error (mid-frame EOF or a field-level `Truncated`),
/// never a panic or a bogus frame. Cutting inside the 4-byte length
/// prefix itself is also mid-frame EOF.
#[test]
fn every_truncation_point_errors_cleanly() {
    run_cases("net-wire-truncation", 64, |g: &mut Gen| {
        let frame = arbitrary_frame(g);
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let cut = g.range_usize(1, buf.len() - 1);
        match read_frame(&mut &buf[..cut]) {
            Err(_) => {}
            Ok(got) => panic!("truncation at {cut}/{} decoded {got:?}", buf.len()),
        }
    });
}

/// Appending garbage INSIDE the declared frame length (shrinking a
/// variable field and leaving its bytes behind) is a `Trailing` error:
/// decoders must account for every body byte.
#[test]
fn trailing_body_bytes_are_rejected() {
    let mut buf = Vec::new();
    Frame::StatsReq.encode(&mut buf);
    // Grow the declared length by 2 and supply 2 extra body bytes.
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) + 2;
    buf[0..4].copy_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&[0xAA, 0xBB]);
    let err = read_frame(&mut buf.as_slice()).expect_err("unconsumed body bytes");
    assert!(matches!(err, WireError::Trailing { extra: 2, .. }), "{err}");
}

/// Bytes after a complete frame belong to the NEXT frame: decoding stops
/// at the declared length and a second read picks up from there.
#[test]
fn decoding_stops_at_the_declared_length() {
    let mut buf = Vec::new();
    Frame::Shutdown.encode(&mut buf);
    Frame::HealthReq.encode(&mut buf);
    let mut stream = buf.as_slice();
    let (first, n1) = read_frame(&mut stream).unwrap().unwrap();
    assert_eq!(first, Frame::Shutdown);
    let (second, _) = read_frame(&mut stream).unwrap().unwrap();
    assert_eq!(second, Frame::HealthReq);
    assert_eq!(n1, 5, "an empty-body frame is [len=1][kind]");
}
