//! Statistical security checks backing §3.6's arguments: the externally
//! visible label sequence must be uniform and independent of the program's
//! access pattern, and the Fork Path optimizations must not change that.

use fork_path_oram::core::{ForkConfig, ForkPathController};
use fork_path_oram::crypto::Xoshiro256;
use fork_path_oram::dram::{DramConfig, DramSystem};
use fork_path_oram::path_oram::{BaselineController, Op, OramConfig};

fn dram() -> DramSystem {
    DramSystem::new(DramConfig::ddr3_1600(2))
}

/// Chi-square statistic of a trace bucketed into `bins` equal leaf ranges.
fn chi_square(trace: &[u64], leaves: u64, bins: usize) -> f64 {
    let mut counts = vec![0u64; bins];
    for &l in trace {
        counts[(l as u128 * bins as u128 / leaves as u128) as usize] += 1;
    }
    let expected = trace.len() as f64 / bins as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// 99.9th percentile of chi-square with `k` degrees of freedom (rough
/// Wilson–Hilferty approximation) — loose enough to avoid flaky tests.
fn chi2_crit(k: f64) -> f64 {
    let z = 3.09; // ~99.9th percentile of N(0,1)
    k * (1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt()).powi(3)
}

fn fork_trace(pattern: &[u64], seed: u64) -> (Vec<u64>, u64) {
    let cfg = OramConfig::small_test();
    let leaves = cfg.leaf_count();
    let mut ctl = ForkPathController::new(cfg, ForkConfig::default(), dram(), seed);
    ctl.enable_label_trace();
    for &addr in pattern {
        ctl.submit(addr, Op::Read, vec![], ctl.clock_ps());
        if addr % 3 == 0 {
            ctl.run_to_idle();
        }
    }
    ctl.run_to_idle();
    (ctl.label_trace().unwrap().to_vec(), leaves)
}

#[test]
fn fork_labels_uniform_for_sequential_pattern() {
    let pattern: Vec<u64> = (0..400).map(|i| i % 128).collect();
    let (trace, leaves) = fork_trace(&pattern, 21);
    assert!(trace.len() > 200);
    let chi2 = chi_square(&trace, leaves, 16);
    assert!(chi2 < chi2_crit(15.0), "chi2={chi2} trace={}", trace.len());
}

#[test]
fn fork_labels_uniform_for_single_hot_address() {
    // The most revealing pattern imaginable: one address, hammered.
    let pattern = vec![42u64; 400];
    let (trace, leaves) = fork_trace(&pattern, 22);
    let chi2 = chi_square(&trace, leaves, 16);
    assert!(chi2 < chi2_crit(15.0), "chi2={chi2}");
}

#[test]
fn label_distributions_indistinguishable_across_patterns() {
    // Two very different programs: labels must look the same. Two-sample
    // chi-square over leaf octants.
    let seq: Vec<u64> = (0..400).map(|i| i % 200).collect();
    let mut rng = Xoshiro256::new(5);
    let rand: Vec<u64> = (0..400).map(|_| rng.next_below(200)).collect();

    let (t1, leaves) = fork_trace(&seq, 23);
    let (t2, _) = fork_trace(&rand, 23);

    let bins = 8usize;
    let hist = |t: &[u64]| {
        let mut h = vec![0f64; bins];
        for &l in t {
            h[(l as u128 * bins as u128 / leaves as u128) as usize] += 1.0;
        }
        h
    };
    let (h1, h2) = (hist(&t1), hist(&t2));
    let (n1, n2) = (t1.len() as f64, t2.len() as f64);
    let mut chi2 = 0.0;
    for b in 0..bins {
        let pooled = (h1[b] + h2[b]) / (n1 + n2);
        let (e1, e2) = (pooled * n1, pooled * n2);
        chi2 += (h1[b] - e1).powi(2) / e1.max(1.0) + (h2[b] - e2).powi(2) / e2.max(1.0);
    }
    assert!(chi2 < chi2_crit(7.0), "two-sample chi2={chi2}");
}

#[test]
fn consecutive_labels_are_uncorrelated_without_scheduling() {
    // With overlap scheduling the controller *deliberately* orders similar
    // labels next to each other — a reordering computed purely from the
    // public label sequence (§3.6). With scheduling disabled, consecutive
    // labels must show no serial structure at all.
    let pattern: Vec<u64> = (0..600).map(|i| (i * 7) % 256).collect();
    let (trace, leaves) = {
        let cfg = OramConfig::small_test();
        let leaves = cfg.leaf_count();
        let fork_cfg = ForkConfig {
            scheduling: false,
            ..ForkConfig::default()
        };
        let mut ctl = ForkPathController::new(cfg, fork_cfg, dram(), 24);
        ctl.enable_label_trace();
        for &addr in &pattern {
            ctl.submit(addr, Op::Read, vec![], ctl.clock_ps());
            if addr % 3 == 0 {
                ctl.run_to_idle();
            }
        }
        ctl.run_to_idle();
        (ctl.label_trace().unwrap().to_vec(), leaves)
    };
    let n = trace.len() - 1;
    let xs: Vec<f64> = trace.iter().map(|&l| l as f64 / leaves as f64).collect();
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    let cov = (0..n)
        .map(|i| (xs[i] - mean) * (xs[i + 1] - mean))
        .sum::<f64>()
        / n as f64;
    let rho = cov / var;
    // With ~500 samples, |rho| beyond ~4/sqrt(n) would be suspicious.
    let bound = 4.0 / (n as f64).sqrt();
    assert!(
        rho.abs() < bound,
        "serial correlation rho={rho} bound={bound}"
    );
}

#[test]
fn baseline_labels_equally_uniform() {
    let cfg = OramConfig::small_test();
    let leaves = cfg.leaf_count();
    let mut ctl = BaselineController::new(cfg, dram(), 31);
    ctl.enable_label_trace();
    for i in 0..300u64 {
        ctl.access_sync(i % 64, Op::Read, vec![]);
    }
    let trace = ctl.label_trace().unwrap().to_vec();
    let chi2 = chi_square(&trace, leaves, 16);
    assert!(chi2 < chi2_crit(15.0), "chi2={chi2}");
}

#[test]
fn merging_does_not_inflate_stash_occupancy_unboundedly() {
    // §3.6: merging must not change the stash-overflow story. Run a long
    // storm and verify the high-water mark stays far below pathological.
    let cfg = OramConfig::small_test();
    let capacity = cfg.stash_capacity;
    let mut ctl = ForkPathController::new(cfg, ForkConfig::default(), dram(), 32);
    let mut rng = Xoshiro256::new(99);
    for _ in 0..1500 {
        let addr = rng.next_below(300);
        let op = if rng.gen_bool(0.4) {
            Op::Write
        } else {
            Op::Read
        };
        ctl.submit(addr, op, vec![1; 16], ctl.clock_ps());
    }
    ctl.run_to_idle();
    let hw = ctl.state().stash().high_water();
    assert!(
        hw < capacity,
        "stash high water {hw} must stay under C={capacity}"
    );
    ctl.state().check_invariants().unwrap();
}

#[test]
fn refill_never_writes_buckets_shared_with_next_path() {
    // Direct check of the fork-shape access property on the stats: merged
    // accesses must touch strictly fewer buckets than full paths.
    let cfg = OramConfig::small_test();
    let full = cfg.path_len() as f64;
    let mut ctl = ForkPathController::new(cfg, ForkConfig::default(), dram(), 33);
    for a in 0..128u64 {
        ctl.submit(a, Op::Read, vec![], 0);
    }
    ctl.run_to_idle();
    let s = ctl.stats();
    assert!(s.avg_path_len() < full - 1.0, "merging must shorten paths");
    // And the first access of the session read a complete path (step 0).
    assert!(s.buckets_read > 0);
}
