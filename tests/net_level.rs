//! Loopback integration tests for the network front end (`fp-net`): real
//! sockets, pipelined clients, and the sharded service behind them.
//!
//! The headline property mirrors `net_bench --verify`: the socket
//! boundary must be semantically invisible. Every request answered over
//! the wire must carry the same `{status, data}` the in-process
//! [`OramService::run_trace`] replay produces for the same tag — reads
//! byte-for-byte (same-address operations apply in program order, so
//! read data is pacing-independent), writes as payload-free acks.

#![allow(clippy::disallowed_methods)] // watchdog deadlines; see the fp-lint pragmas below

use std::collections::HashMap;
// fp-lint: allow(wall-clock-in-sim) reason=watchdog deadline bounding a hung test, not a simulated measurement
use std::time::{Duration, Instant};

use fork_path_oram::core::FaultConfig;
use fork_path_oram::net::{
    NetClient, NetConfig, NetServer, WireHealth, WireOp, WireRequest, WireStatus,
};
use fork_path_oram::path_oram::Op;
use fork_path_oram::propcheck::{run_cases, Gen};
use fork_path_oram::service::{OramService, ServiceConfig, ServiceRequest};
use fork_path_oram::workloads::zipf::{self, ScheduledRequest, ZipfConfig};

/// The shrunken geometry the service-level suites use: small enough that
/// a few hundred requests finish in tens of milliseconds per shard.
fn small_cfg(shards: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::fast_test(shards);
    cfg.oram.data_blocks = 1 << 12;
    cfg.oram.levels = 11;
    cfg.oram.onchip_posmap_entries = 1 << 6;
    cfg
}

fn wire_request(r: &ScheduledRequest, block_bytes: usize) -> WireRequest {
    let (op, payload) = match r.op {
        Op::Read => (WireOp::Read, Vec::new()),
        Op::Write => (
            WireOp::Write,
            zipf::write_payload(r.addr, r.tag, block_bytes),
        ),
    };
    WireRequest {
        tag: r.tag,
        op,
        addr: r.addr,
        deadline_rel_ns: 0,
        payload,
    }
}

/// Replays `slice` through one pipelined connection and returns
/// tag -> (status, data) for every response.
fn run_client(
    addr: std::net::SocketAddr,
    window: usize,
    slice: &[ScheduledRequest],
    block_bytes: usize,
) -> HashMap<u64, (WireStatus, Vec<u8>)> {
    let mut client = NetClient::connect(addr, window).expect("client connect");
    let mut out = HashMap::with_capacity(slice.len());
    for r in slice {
        client.submit(wire_request(r, block_bytes)).expect("submit");
        while client.ready() > 0 {
            let resp = client.recv().expect("recv");
            out.insert(resp.tag, (resp.status, resp.data));
        }
    }
    for resp in client.drain().expect("drain") {
        out.insert(resp.tag, (resp.status, resp.data));
    }
    out
}

// ---------- wire/in-process equivalence ------------------------------

/// N pipelined clients against a 4-shard server over loopback: the wire
/// run's per-tag `{status, data}` must match the in-process trace replay
/// of the same schedule. The schedule is a Zipfian hotspot, so hot
/// addresses carry long read/write dependency chains — exactly the case
/// where a reordering or stale-forwarding bug in the network plane would
/// surface as divergent read data.
#[test]
fn wire_responses_match_in_process_replay() {
    run_cases("net-loopback-equivalence", 2, |g: &mut Gen| {
        let conns = 1 << g.range(1, 2); // 2 or 4 clients
        let window = g.range_usize(4, 16);
        let service = small_cfg(4);
        let block_bytes = service.oram.block_bytes;
        let zc = ZipfConfig::hot(
            service.oram.data_blocks,
            600,
            block_bytes,
            g.below(u64::MAX),
        );
        let sched = zipf::generate(&zc);

        let cfg = NetConfig {
            service: service.clone(),
            port: 0,
            max_connections: conns + 1,
            max_inflight_per_conn: window,
            // Busy must be structurally impossible: every connection's
            // full window fits in each shard queue simultaneously.
            drain_wait_ms: 5_000,
        };
        assert!(cfg.service.queue_depth >= conns * window, "test sizing");

        let server = NetServer::start(cfg).expect("server start");
        let addr = server.local_addr();

        // Partition by address so each address is owned by exactly one
        // connection and per-address program order survives the fan-out.
        let slices: Vec<Vec<ScheduledRequest>> = (0..conns as u64)
            .map(|c| {
                sched
                    .iter()
                    .filter(|r| r.addr % conns as u64 == c)
                    .cloned()
                    .collect()
            })
            .collect();
        let wire: HashMap<u64, (WireStatus, Vec<u8>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .map(|slice| scope.spawn(|| run_client(addr, window, slice, block_bytes)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });

        server.shutdown();
        let report = server.join().expect("server join");
        assert!(
            report.failures.is_empty(),
            "shards died: {:?}",
            report.failures
        );
        assert_eq!(wire.len(), sched.len(), "every request must be answered");

        // The in-process replay of the same schedule.
        let requests: Vec<ServiceRequest> = sched
            .iter()
            .map(|r| ServiceRequest {
                addr: r.addr,
                op: r.op,
                data: match r.op {
                    Op::Write => zipf::write_payload(r.addr, r.tag, block_bytes),
                    Op::Read => Vec::new(),
                },
                arrival_ps: r.arrival_ps,
                deadline_ps: None,
                tag: r.tag,
            })
            .collect();
        let (_, completions) = OramService::run_trace(service, requests).expect("replay");
        assert_eq!(
            completions.len(),
            wire.len(),
            "completion counts must agree"
        );
        for c in completions {
            let (status, data) = &wire[&c.tag];
            assert_eq!(c.status.name(), "ok", "replay tag {} not ok", c.tag);
            assert_eq!(*status, WireStatus::Ok, "wire tag {} not ok", c.tag);
            match sched
                .iter()
                .find(|r| r.tag == c.tag)
                .expect("tag in schedule")
                .op
            {
                Op::Read => assert_eq!(data, &c.data, "tag {}: wire read data diverges", c.tag),
                Op::Write => assert!(
                    data.is_empty(),
                    "tag {}: write ack must be payload-free",
                    c.tag
                ),
            }
        }
    });
}

// ---------- fault containment ----------------------------------------

/// A shard killed by deterministic fault injection must not take the
/// server down: requests routed to the dead shard are answered
/// [`WireStatus::ShardDown`] (at submit, or via the dispatcher's sweep
/// for those stranded in flight), the surviving shard keeps serving
/// `Ok`, the health endpoint reports the death, and the final report
/// carries the shard failure.
#[test]
fn dead_shard_answers_shard_down_while_survivors_serve() {
    let mut service = small_cfg(2);
    service.fault = Some(FaultConfig {
        // Kill shard 0 on its third processed access.
        fail_at_access: Some(2),
        ..FaultConfig::default()
    });
    service.fault_shard = Some(0);
    let cfg = NetConfig {
        service,
        port: 0,
        max_connections: 2,
        max_inflight_per_conn: 8,
        drain_wait_ms: 2_000,
    };
    let server = NetServer::start(cfg).expect("server start");
    let mut client = NetClient::connect(server.local_addr(), 8).expect("client connect");

    // With 2 shards, even addresses route to shard 0 (the doomed one)
    // and odd addresses to shard 1 (the survivor).
    // fp-lint: allow(wall-clock-in-sim) reason=watchdog deadline so a dead-shard livelock fails the test instead of hanging CI
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut tag = 0u64;
    let mut saw_shard_down = false;
    let mut survivor_ok_after_death = 0u64;
    // fp-lint: allow(wall-clock-in-sim) reason=watchdog deadline check, see above
    while Instant::now() < deadline && survivor_ok_after_death < 8 {
        for addr in [0u64, 1] {
            client
                .submit(WireRequest {
                    tag,
                    op: WireOp::Read,
                    addr,
                    deadline_rel_ns: 0,
                    payload: Vec::new(),
                })
                .expect("submit");
            tag += 1;
        }
        for resp in client.drain().expect("drain") {
            match resp.status {
                WireStatus::ShardDown => saw_shard_down = true,
                // resp.tag parity == address parity (one request per
                // address per round): odd tags went to the survivor.
                WireStatus::Ok if saw_shard_down && resp.tag % 2 == 1 => {
                    survivor_ok_after_death += 1;
                }
                WireStatus::Ok | WireStatus::Busy => {}
                other => panic!("unexpected status {}", other.name()),
            }
        }
    }
    assert!(saw_shard_down, "the dead shard must answer ShardDown");
    assert!(
        survivor_ok_after_death >= 8,
        "the surviving shard must keep serving after the death"
    );
    let health = client.health().expect("health");
    assert_eq!(health[0], WireHealth::Dead, "shard 0 must report dead");
    assert_eq!(health[1], WireHealth::Healthy, "shard 1 must stay healthy");

    server.shutdown();
    let report = server.join().expect("server join");
    assert_eq!(
        report.failures.len(),
        1,
        "exactly one shard failure: {:?}",
        report.failures
    );
    assert_eq!(report.failures[0].shard, 0);
}
