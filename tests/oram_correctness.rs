//! Cross-crate functional correctness: both controllers must behave as a
//! standard RAM against a reference model, under random operation storms,
//! recursion, scheduling reorders, hazards, and real encryption.

use std::collections::HashMap;

use fork_path_oram::core::{ForkConfig, ForkPathController};
use fork_path_oram::crypto::Xoshiro256;
use fork_path_oram::dram::{DramConfig, DramSystem};
use fork_path_oram::path_oram::{BaselineController, CipherMode, Op, OramConfig};

fn dram() -> DramSystem {
    DramSystem::new(DramConfig::ddr3_1600(2))
}

/// Drives `ops` random operations through the fork controller, checking
/// reads against a reference HashMap.
fn storm_fork(cfg: OramConfig, seed: u64, ops: usize, addr_space: u64) {
    let block = cfg.block_bytes;
    let mut ctl = ForkPathController::new(cfg, ForkConfig::default(), dram(), seed);
    let mut rng = Xoshiro256::new(seed ^ 0xABCD);
    let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new(); // id -> data

    for i in 0..ops {
        let addr = rng.next_below(addr_space);
        if rng.gen_bool(0.45) {
            let mut payload = vec![(i & 0xFF) as u8; block];
            payload[0] = addr as u8;
            reference.insert(addr, payload.clone());
            ctl.submit(addr, Op::Write, payload, ctl.clock_ps());
        } else {
            let want = reference
                .get(&addr)
                .cloned()
                .unwrap_or_else(|| vec![0u8; block]);
            let id = ctl.submit(addr, Op::Read, vec![], ctl.clock_ps());
            expected.insert(id, want);
        }
        // Occasionally let the controller drain, so both batched and
        // incremental processing paths are exercised.
        if rng.gen_bool(0.25) {
            for c in ctl.run_to_idle() {
                if let Some(want) = expected.remove(&c.id) {
                    assert_eq!(c.data, want, "read {} returned wrong data", c.addr);
                }
            }
        }
    }
    for c in ctl.run_to_idle() {
        if let Some(want) = expected.remove(&c.id) {
            assert_eq!(c.data, want, "read {} returned wrong data", c.addr);
        }
    }
    assert!(expected.is_empty(), "all reads completed");
    ctl.state().check_invariants().unwrap();
}

#[test]
fn fork_random_storm_small_config() {
    storm_fork(OramConfig::small_test(), 1, 600, 256);
}

#[test]
fn fork_random_storm_narrow_addresses_forces_hazards() {
    // 8 addresses: constant same-address traffic exercises forwarding,
    // cancellation, and same-block serialization.
    storm_fork(OramConfig::small_test(), 2, 400, 8);
}

#[test]
fn fork_random_storm_with_real_encryption() {
    let mut cfg = OramConfig::small_test();
    cfg.cipher_mode = CipherMode::Real;
    storm_fork(cfg, 3, 250, 128);
}

#[test]
fn fork_random_storm_paper_geometry() {
    // The full 4 GB tree geometry (sparse): deep paths, 3 posmap levels.
    storm_fork(OramConfig::paper_default(4 << 30), 4, 150, 4096);
}

#[test]
fn baseline_random_storm_matches_reference() {
    let cfg = OramConfig::small_test();
    let block = cfg.block_bytes;
    let mut ctl = BaselineController::new(cfg, dram(), 9);
    let mut rng = Xoshiro256::new(77);
    let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
    for i in 0..500u64 {
        let addr = rng.next_below(200);
        if rng.gen_bool(0.5) {
            let payload = vec![(i & 0xFF) as u8; block];
            reference.insert(addr, payload.clone());
            ctl.access_sync(addr, Op::Write, payload);
        } else {
            let got = ctl.access_sync(addr, Op::Read, vec![]);
            let want = reference
                .get(&addr)
                .cloned()
                .unwrap_or_else(|| vec![0u8; block]);
            assert_eq!(got, want, "addr {addr}");
        }
    }
    ctl.state().check_invariants().unwrap();
}

#[test]
fn fork_and_baseline_agree_on_final_state() {
    // The same operation sequence must produce the same program-visible
    // memory under both controllers.
    let ops: Vec<(u64, Option<u8>)> = {
        let mut rng = Xoshiro256::new(31);
        (0..300)
            .map(|_| {
                let addr = rng.next_below(64);
                let write = rng.gen_bool(0.5).then(|| rng.next_below(255) as u8);
                (addr, write)
            })
            .collect()
    };

    let cfg = OramConfig::small_test();
    let block = cfg.block_bytes;

    let mut base = BaselineController::new(cfg.clone(), dram(), 5);
    for &(addr, w) in &ops {
        match w {
            Some(b) => {
                base.access_sync(addr, Op::Write, vec![b; block]);
            }
            None => {
                base.access_sync(addr, Op::Read, vec![]);
            }
        }
    }

    let mut fork = ForkPathController::new(cfg, ForkConfig::default(), dram(), 6);
    for &(addr, w) in &ops {
        match w {
            Some(b) => fork.submit(addr, Op::Write, vec![b; block], fork.clock_ps()),
            None => fork.submit(addr, Op::Read, vec![], fork.clock_ps()),
        };
    }
    fork.run_to_idle();

    for addr in 0..64u64 {
        let a = base.access_sync(addr, Op::Read, vec![]);
        fork.submit(addr, Op::Read, vec![], fork.clock_ps());
        let b = fork.run_to_idle().pop().unwrap().data;
        assert_eq!(a, b, "state diverged at address {addr}");
    }
}

#[test]
fn tiny_queue_and_huge_queue_both_correct() {
    for queue in [1usize, 128] {
        let cfg = OramConfig::small_test();
        let block = cfg.block_bytes;
        let fork_cfg = ForkConfig {
            label_queue_size: queue,
            ..ForkConfig::default()
        };
        let mut ctl = ForkPathController::new(cfg, fork_cfg, dram(), 8);
        for a in 0..40u64 {
            ctl.submit(a, Op::Write, vec![a as u8; block], 0);
        }
        ctl.run_to_idle();
        for a in 0..40u64 {
            ctl.submit(a, Op::Read, vec![], ctl.clock_ps());
        }
        for c in ctl.run_to_idle() {
            assert_eq!(c.data[0], c.addr as u8, "queue={queue}");
        }
        ctl.state().check_invariants().unwrap();
    }
}

#[test]
fn ablation_variants_remain_correct() {
    // Disabling each technique must never affect functional behaviour.
    for (merging, scheduling, replacing) in [
        (false, false, false),
        (true, false, false),
        (true, true, false),
        (true, true, true),
    ] {
        let cfg = OramConfig::small_test();
        let block = cfg.block_bytes;
        let fork_cfg = ForkConfig {
            merging,
            scheduling,
            replacing,
            ..ForkConfig::default()
        };
        let mut ctl = ForkPathController::new(cfg, fork_cfg, dram(), 10);
        for a in 0..32u64 {
            ctl.submit(a, Op::Write, vec![!(a as u8); block], 0);
        }
        ctl.run_to_idle();
        for a in 0..32u64 {
            ctl.submit(a, Op::Read, vec![], ctl.clock_ps());
        }
        for c in ctl.run_to_idle() {
            assert_eq!(
                c.data[0],
                !(c.addr as u8),
                "merging={merging} scheduling={scheduling} replacing={replacing}"
            );
        }
        ctl.state().check_invariants().unwrap();
    }
}

#[test]
fn caches_do_not_change_functional_results() {
    use fork_path_oram::core::CacheChoice;
    for cache in [
        CacheChoice::None,
        CacheChoice::Treetop { bytes: 8 << 10 },
        CacheChoice::MergingAware {
            bytes: 8 << 10,
            ways: 4,
        },
    ] {
        let cfg = OramConfig::small_test();
        let block = cfg.block_bytes;
        let fork_cfg = ForkConfig {
            cache,
            ..ForkConfig::default()
        };
        let mut ctl = ForkPathController::new(cfg, fork_cfg, dram(), 12);
        for round in 0..3 {
            for a in 0..48u64 {
                ctl.submit(a, Op::Write, vec![a as u8 ^ round; block], ctl.clock_ps());
            }
            ctl.run_to_idle();
            for a in 0..48u64 {
                ctl.submit(a, Op::Read, vec![], ctl.clock_ps());
            }
            for c in ctl.run_to_idle() {
                assert_eq!(c.data[0], c.addr as u8 ^ round, "{cache:?}");
            }
        }
        ctl.state().check_invariants().unwrap();
    }
}
