//! Full-system integration: the paper's qualitative claims must hold on
//! end-to-end closed-loop simulations.

use fork_path_oram::core::ForkConfig;
use fork_path_oram::sim::experiment::MissBudget;
use fork_path_oram::sim::{run_workload, Scheme, SystemConfig};
use fork_path_oram::workloads::cpu::{MultiCoreWorkload, PipelineKind};
use fork_path_oram::workloads::mixes;

/// A dense 4-core workload shrunk to the fast-test ORAM capacity.
fn dense_wl(budget: u64, seed: u64) -> MultiCoreWorkload {
    let mut mix = mixes::all()[2].clone(); // Mix3, HG
    for p in &mut mix.programs {
        p.working_set_blocks = 1 << 12;
        p.avg_gap_ns = 400.0;
    }
    MultiCoreWorkload::from_mix(&mix, budget, seed)
}

/// A sparse (compute-bound) workload.
fn sparse_wl(budget: u64, seed: u64) -> MultiCoreWorkload {
    let mut mix = mixes::all()[0].clone(); // Mix1, LG
    for p in &mut mix.programs {
        p.working_set_blocks = 1 << 12;
    }
    MultiCoreWorkload::from_mix(&mix, budget, seed)
}

#[test]
fn headline_claim_fork_reduces_latency_and_energy() {
    let cfg = SystemConfig::fast_test();
    let base = run_workload(&cfg, Scheme::Traditional, dense_wl(150, 3));
    let fork = run_workload(
        &cfg,
        Scheme::Fork(ForkConfig::paper_best()),
        dense_wl(150, 3),
    );
    assert!(
        fork.oram_latency_ns < 0.7 * base.oram_latency_ns,
        "fork {:.0} vs base {:.0}",
        fork.oram_latency_ns,
        base.oram_latency_ns
    );
    assert!(fork.energy.total_pj() < base.energy.total_pj());
    assert!(fork.exec_time_ps < base.exec_time_ps);
}

#[test]
fn slowdown_ordering_matches_paper() {
    // insecure < fork < traditional in execution time.
    let cfg = SystemConfig::fast_test();
    let insecure = run_workload(&cfg, Scheme::Insecure, dense_wl(120, 4));
    let fork = run_workload(&cfg, Scheme::ForkDefault, dense_wl(120, 4));
    let trad = run_workload(&cfg, Scheme::Traditional, dense_wl(120, 4));
    assert!(insecure.exec_time_ps < fork.exec_time_ps);
    assert!(fork.exec_time_ps < trad.exec_time_ps);
}

#[test]
fn dummy_overhead_tracks_intensity() {
    // §5.2: low memory intensity inserts more dummies.
    let cfg = SystemConfig::fast_test();
    let dense = run_workload(&cfg, Scheme::ForkDefault, dense_wl(120, 5));
    let sparse = run_workload(&cfg, Scheme::ForkDefault, sparse_wl(120, 5));
    let dense_frac = dense.dummy_accesses as f64 / dense.oram_accesses.max(1) as f64;
    let sparse_frac = sparse.dummy_accesses as f64 / sparse.oram_accesses.max(1) as f64;
    assert!(
        sparse_frac > dense_frac,
        "sparse {sparse_frac:.3} should exceed dense {dense_frac:.3}"
    );
}

#[test]
fn in_order_pipeline_is_less_favourable() {
    // Fig 16: relative fork advantage shrinks in-order.
    let cfg = SystemConfig::fast_test();
    let mut mix = mixes::all()[2].clone();
    for p in &mut mix.programs {
        p.working_set_blocks = 1 << 12;
        p.avg_gap_ns = 400.0;
    }
    let mk = |pipeline| MultiCoreWorkload::from_profiles(&mix.programs, pipeline, 100, 6);
    let ratio = |pipeline| {
        let base = run_workload(&cfg, Scheme::Traditional, mk(pipeline));
        let fork = run_workload(&cfg, Scheme::ForkDefault, mk(pipeline));
        fork.oram_latency_ns / base.oram_latency_ns
    };
    let ooo = ratio(PipelineKind::OutOfOrder);
    let ino = ratio(PipelineKind::InOrder);
    assert!(ino > ooo, "in-order {ino:.3} vs out-of-order {ooo:.3}");
}

#[test]
fn runs_are_deterministic() {
    let cfg = SystemConfig::fast_test();
    let a = run_workload(&cfg, Scheme::ForkDefault, dense_wl(80, 9));
    let b = run_workload(&cfg, Scheme::ForkDefault, dense_wl(80, 9));
    assert_eq!(a.oram_accesses, b.oram_accesses);
    assert_eq!(a.exec_time_ps, b.exec_time_ps);
    assert_eq!(a.dram_blocks_read, b.dram_blocks_read);
    assert!((a.oram_latency_ns - b.oram_latency_ns).abs() < 1e-9);
}

#[test]
fn bigger_oram_means_longer_paths() {
    // Fig 17(b) mechanics at test scale.
    let small = SystemConfig::with_capacity(1 << 30);
    let large = SystemConfig::with_capacity(32u64 << 30);
    assert!(large.oram.path_len() > small.oram.path_len());
    // And the path-length metric from a real run reflects it.
    let mut mix = mixes::all()[4].clone();
    for p in &mut mix.programs {
        p.working_set_blocks = 1 << 10;
        p.avg_gap_ns = 500.0;
    }
    let wl = |_cfg: &SystemConfig| MultiCoreWorkload::from_mix(&mix, 40, 11);
    let rs = run_workload(&small, Scheme::Traditional, wl(&small));
    let rl = run_workload(&large, Scheme::Traditional, wl(&large));
    assert!(rl.avg_path_len > rs.avg_path_len);
    assert_eq!(rs.avg_path_len, small.oram.path_len() as f64);
}

#[test]
fn more_channels_cut_latency() {
    // Fig 18 mechanics: adding channels speeds both schemes.
    let one = SystemConfig::with_channels(1);
    let four = SystemConfig::with_channels(4);
    let r1 = run_workload(&one, Scheme::Traditional, dense_wl(100, 13));
    let r4 = run_workload(&four, Scheme::Traditional, dense_wl(100, 13));
    assert!(r4.oram_latency_ns < r1.oram_latency_ns);
}

#[test]
fn parsec_workloads_run_end_to_end() {
    let cfg = SystemConfig::fast_test();
    let mut wl_def = fork_path_oram::workloads::parsec::by_name("swaptions").unwrap();
    wl_def.profile.working_set_blocks = 1 << 12;
    let wl = MultiCoreWorkload::from_parsec(&wl_def, 4, 60, 15);
    let r = run_workload(&cfg, Scheme::ForkDefault, wl);
    assert_eq!(r.llc_requests, 240);
    assert!(r.oram_latency_ns > 0.0);
}

#[test]
fn miss_budget_scales_run_length() {
    let cfg = SystemConfig::fast_test();
    let short = run_workload(&cfg, Scheme::ForkDefault, dense_wl(40, 17));
    let long = run_workload(&cfg, Scheme::ForkDefault, dense_wl(160, 17));
    assert_eq!(short.llc_requests * 4, long.llc_requests);
    assert!(long.exec_time_ps > short.exec_time_ps);
    let _ = MissBudget::Fast; // re-export sanity
}
