//! Old-vs-new access API equivalence for the baseline Path ORAM
//! controller.
//!
//! The baseline grew the same incremental submit/pump surface the Fork
//! Path controller has (and both now implement `fp_core::OramEngine`).
//! These tests pin the refactor: a request stream driven through the
//! historical synchronous pattern (`submit` + `run_to_idle` per request,
//! or `access_sync`) and the same stream driven through the incremental
//! engine API — submitted in randomized chunks, pumped step by step,
//! drained mid-flight — must produce bit-identical completions,
//! statistics, and stash high-water marks, with and without a treetop
//! cache.

use fork_path_oram::core::{NewRequest, NoFeedback, OramEngine};
use fork_path_oram::dram::{DramConfig, DramSystem};
use fork_path_oram::path_oram::{BaselineController, Op, OramConfig};
use fork_path_oram::propcheck::{run_cases, Gen};

fn controller(treetop: bool, seed: u64) -> BaselineController {
    let cfg = OramConfig::small_test();
    let dram = DramSystem::new(DramConfig::ddr3_1600(2));
    if treetop {
        BaselineController::with_treetop(cfg, dram, seed, 16 << 10)
    } else {
        BaselineController::new(cfg, dram, seed)
    }
}

struct Req {
    addr: u64,
    op: Op,
    data: Vec<u8>,
    arrival_ps: u64,
}

/// A randomized request stream with non-decreasing arrivals over a small
/// address space (so stash pressure and path reuse both occur).
fn gen_stream(g: &mut Gen, n: usize) -> Vec<Req> {
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            t += g.below(2_000_000);
            let addr = g.below(256);
            let (op, data) = if g.below(3) == 0 {
                (Op::Write, vec![(addr % 251) as u8; 16])
            } else {
                (Op::Read, Vec::new())
            };
            Req {
                addr,
                op,
                data,
                arrival_ps: t,
            }
        })
        .collect()
}

/// Same seed, same stream: the old one-request-at-a-time sync pattern and
/// the new incremental API (random chunked submissions, stepwise pumping,
/// mid-flight drains) are indistinguishable in every observable output.
#[test]
fn sync_and_incremental_drives_are_equivalent() {
    run_cases("baseline-sync-vs-incremental", 6, |g: &mut Gen| {
        let treetop = g.below(2) == 1;
        let seed = g.below(u64::MAX);
        let stream = gen_stream(g, 24);

        // Drive A: the historical synchronous pattern.
        let mut a = controller(treetop, seed);
        let mut a_done = Vec::new();
        for r in &stream {
            a.submit(r.addr, r.op, r.data.clone(), r.arrival_ps);
            a_done.extend(a.run_to_idle());
        }

        // Drive B: the same stream through the engine trait, in random
        // chunks with interleaved pumping and draining.
        let mut b = controller(treetop, seed);
        let mut b_done = Vec::new();
        let mut next = 0usize;
        while next < stream.len() {
            let chunk = 1 + g.below(5) as usize;
            for r in stream.iter().skip(next).take(chunk) {
                OramEngine::submit(
                    &mut b,
                    NewRequest {
                        addr: r.addr,
                        op: r.op,
                        data: r.data.clone(),
                        arrival_ps: r.arrival_ps,
                        tag: 0,
                    },
                )
                .expect("baseline submit is infallible");
            }
            next += chunk;
            for _ in 0..g.below(4) {
                OramEngine::process_one(&mut b, &mut NoFeedback)
                    .expect("baseline pump is infallible");
            }
            if g.below(2) == 0 {
                b_done.extend(OramEngine::drain_completions(&mut b));
            }
        }
        b_done.extend(OramEngine::run_to_idle(&mut b).expect("baseline run_to_idle"));

        assert_eq!(
            a_done, b_done,
            "treetop={treetop} seed={seed:#x}: completion streams diverged"
        );
        assert_eq!(a.stats(), b.stats(), "treetop={treetop} seed={seed:#x}");
        assert_eq!(
            a.state().stash().high_water(),
            b.state().stash().high_water(),
            "treetop={treetop} seed={seed:#x}"
        );
        assert_eq!(a.clock_ps(), b.clock_ps());
    });
}

/// `access_sync` is a thin wrapper: each call equals one trait-level
/// submit at the current clock plus a run to idle.
#[test]
fn access_sync_matches_incremental_single_steps() {
    for treetop in [false, true] {
        let mut a = controller(treetop, 42);
        let mut b = controller(treetop, 42);
        for i in 0..16u64 {
            let addr = (i * 37) % 64;
            let (op, data) = if i % 3 == 0 {
                (Op::Write, vec![i as u8; 16])
            } else {
                (Op::Read, Vec::new())
            };
            let da = a.access_sync(addr, op, data.clone());
            let arrival_ps = b.clock_ps();
            let id = OramEngine::submit(
                &mut b,
                NewRequest {
                    addr,
                    op,
                    data,
                    arrival_ps,
                    tag: 0,
                },
            )
            .expect("baseline submit is infallible");
            let done = OramEngine::run_to_idle(&mut b).expect("baseline run_to_idle");
            assert_eq!(done.len(), 1, "treetop={treetop}");
            assert_eq!(done[0].id, id);
            assert_eq!(done[0].data, da, "treetop={treetop} i={i}");
        }
        assert_eq!(a.stats(), b.stats(), "treetop={treetop}");
        assert_eq!(
            a.state().stash().high_water(),
            b.state().stash().high_water()
        );
    }
}
