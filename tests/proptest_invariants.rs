//! Property-based tests over the core data structures and the end-to-end
//! controllers: Path ORAM invariants, path arithmetic, eviction legality,
//! cache geometry, and RAM semantics under arbitrary operation sequences.
//!
//! Runs on the in-repo [`propcheck`] driver (seeded by the workspace's own
//! Xoshiro256); a failure prints the seed that replays it.
//!
//! [`propcheck`]: fork_path_oram::propcheck

use fork_path_oram::core::{
    ForkConfig, ForkPathController, MergingAwareCache, PosMapLookasideBuffer,
};
use fork_path_oram::dram::{DramConfig, DramSystem};
use fork_path_oram::path_oram::cache::{BucketCache, WriteOutcome};
use fork_path_oram::path_oram::path::{
    divergence_level, node_at_level, node_level, overlap_degree, path_contains, path_nodes,
};
use fork_path_oram::path_oram::{Block, Op, OramConfig, OramState, Stash};
use fork_path_oram::propcheck::{run_cases, Gen};

const CASES: u64 = 64;

fn dram() -> DramSystem {
    DramSystem::new(DramConfig::ddr3_1600(2))
}

// ---------- path arithmetic ----------------------------------------

#[test]
fn overlap_matches_explicit_path_intersection() {
    run_cases(
        "overlap_matches_explicit_path_intersection",
        CASES,
        |g: &mut Gen| {
            let levels = g.range_u32(1, 12);
            let leaves = 1u64 << levels;
            let a = g.below(leaves);
            let b = g.below(leaves);
            let pa = path_nodes(levels, a);
            let pb = path_nodes(levels, b);
            let shared = pa.iter().filter(|n| pb.contains(n)).count() as u32;
            assert_eq!(overlap_degree(levels, a, b), shared);
        },
    );
}

#[test]
fn divergence_is_deepest_shared_level() {
    run_cases(
        "divergence_is_deepest_shared_level",
        CASES,
        |g: &mut Gen| {
            let levels = g.range_u32(1, 12);
            let leaves = 1u64 << levels;
            let a = g.below(leaves);
            let b = g.below(leaves);
            let d = divergence_level(levels, a, b);
            assert_eq!(node_at_level(levels, a, d), node_at_level(levels, b, d));
            if d < levels {
                assert_ne!(
                    node_at_level(levels, a, d + 1),
                    node_at_level(levels, b, d + 1)
                );
            }
        },
    );
}

#[test]
fn every_path_node_contains_its_leaf() {
    run_cases("every_path_node_contains_its_leaf", CASES, |g: &mut Gen| {
        let levels = g.range_u32(1, 12);
        let leaf = g.below(1 << levels);
        for (d, node) in path_nodes(levels, leaf).iter().enumerate() {
            assert_eq!(node_level(*node), d as u32);
            assert!(path_contains(levels, leaf, *node));
        }
    });
}

// ---------- stash eviction ------------------------------------------

#[test]
fn eviction_only_places_legal_blocks() {
    run_cases("eviction_only_places_legal_blocks", CASES, |g: &mut Gen| {
        let levels = 8u32;
        let leaf = g.below(256);
        let block_leaves = g.vec(1, 64, |g| g.below(256));
        let lo = g.range_u32(0, 8);
        let hi = levels;
        let mut stash = Stash::new(256);
        for (i, &bl) in block_leaves.iter().enumerate() {
            stash.insert(Block::new(i as u64, bl, vec![0u8; 8]));
        }
        let before = stash.len();
        let plan = stash.plan_eviction(levels, leaf, lo, hi, 4);
        let mut evicted = 0usize;
        for (level, blocks) in &plan {
            assert!(blocks.len() <= 4, "bucket capacity");
            assert!((lo..=hi).contains(level));
            for b in blocks {
                // Path ORAM invariant: the block's path passes through the
                // bucket it is placed in.
                let bucket = node_at_level(levels, leaf, *level);
                assert!(path_contains(levels, b.leaf, bucket));
                evicted += 1;
            }
        }
        assert_eq!(evicted + stash.len(), before, "no block lost");
    });
}

// ---------- MAC geometry --------------------------------------------

#[test]
fn mac_set_index_stays_in_bounds() {
    run_cases("mac_set_index_stays_in_bounds", CASES, |g: &mut Gen| {
        let sets = g.range_usize(1, 512);
        let ways = g.range_usize(1, 8);
        let m1 = g.range_u32(1, 8);
        let y = g.below(65536);
        let mut mac = MergingAwareCache::new(sets, ways, m1);
        let deepest = mac.deepest_level();
        for level in m1..=deepest {
            let node = (1u64 << level) + (y % (1 << level));
            // Inserting must never panic and never evict from resident
            // levels beyond capacity.
            let _ = mac.insert_on_write(node);
            let _ = mac.lookup_for_read(node);
        }
    });
}

// ---------- optimized hot-path structures vs reference models ---------
//
// The PLB and the MAC were rewritten for O(1)/single-pass operation (the
// PLB as a hashmap-indexed intrusive LRU list, the MAC as a flat way-slab).
// These properties pin the optimized implementations to straightforward
// reference models — the shapes of the original implementations — over
// randomized access streams: every observable (return values, membership,
// occupancy) must agree at every step.

/// Reference LRU: the `VecDeque` + linear-scan shape the PLB replaced.
struct RefPlb {
    queue: std::collections::VecDeque<u64>,
    capacity: usize,
}

impl RefPlb {
    fn touch(&mut self, addr: u64) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(pos) = self.queue.iter().position(|&a| a == addr) {
            self.queue.remove(pos);
            self.queue.push_back(addr);
            return None;
        }
        self.queue.push_back(addr);
        if self.queue.len() > self.capacity {
            self.queue.pop_front()
        } else {
            None
        }
    }
}

#[test]
fn plb_matches_lru_reference_model() {
    run_cases("plb_matches_lru_reference_model", CASES, |g: &mut Gen| {
        let capacity = g.range_usize(0, 24);
        // A small address universe forces plenty of hits, refreshes of
        // middle elements, and evictions.
        let addrs = g.vec(1, 200, |g| g.below(40));
        let mut plb = PosMapLookasideBuffer::new(capacity);
        let mut reference = RefPlb {
            queue: Default::default(),
            capacity,
        };
        for &addr in &addrs {
            assert_eq!(
                plb.touch(addr),
                reference.touch(addr),
                "touch({addr}) diverged (capacity {capacity})"
            );
            assert_eq!(plb.len(), reference.queue.len());
            assert_eq!(plb.is_empty(), reference.queue.is_empty());
            for probe in 0..40 {
                assert_eq!(
                    plb.contains(probe),
                    reference.queue.contains(&probe),
                    "contains({probe}) diverged"
                );
            }
        }
    });
}

/// Reference MAC line and per-set `Vec` storage: the growable-sets,
/// two-pass-scan shape the flat-slab MAC replaced. Geometry (resident
/// window, fold region) follows the same sizing rule.
struct RefMac {
    sets: Vec<Vec<(u64, u64, bool)>>, // (node, last_use, dirty)
    ways: usize,
    m1: u32,
    full_levels: u32,
    partial_sets: u64,
    partial_base: u64,
    tick: u64,
    resident: usize,
}

impl RefMac {
    fn new(num_sets: usize, ways: usize, m1: u32, leaf_level: u32) -> Self {
        let slots = (num_sets * ways) as u64;
        let level_budget = leaf_level.saturating_sub(m1).saturating_add(1);
        let mut full_levels = 0u32;
        while full_levels < 40.min(level_budget)
            && (1u128 << (m1 + full_levels + 1)) - (1u128 << m1) <= slots as u128
        {
            full_levels += 1;
        }
        let used_slots = if full_levels == 0 {
            0
        } else {
            (1u64 << (m1 + full_levels)) - (1u64 << m1)
        };
        let partial_base = used_slots.div_ceil(ways as u64);
        let partial_sets = if m1 + full_levels <= leaf_level {
            (num_sets as u64).saturating_sub(partial_base)
        } else {
            0
        };
        Self {
            sets: vec![Vec::new(); num_sets],
            ways,
            m1,
            full_levels,
            partial_sets,
            partial_base,
            tick: 0,
            resident: 0,
        }
    }

    fn deepest_level(&self) -> u32 {
        if self.partial_sets > 0 {
            self.m1 + self.full_levels
        } else {
            self.m1 + self.full_levels - 1
        }
    }

    fn set_index(&self, node: u64) -> usize {
        let x = fork_path_oram::path_oram::path::node_level(node);
        let y = fork_path_oram::path_oram::path::index_in_level(node);
        if self.full_levels > 0 && x < self.m1 + self.full_levels {
            let slot = (1u64 << x) - (1u64 << self.m1) + y;
            (slot / self.ways as u64) as usize
        } else {
            (self.partial_base + (y % self.partial_sets)) as usize
        }
    }

    fn cacheable(&self, node: u64) -> bool {
        let level = fork_path_oram::path_oram::path::node_level(node);
        (self.m1..=self.deepest_level()).contains(&level)
    }

    fn lookup_for_read(&mut self, node: u64) -> bool {
        if !self.cacheable(node) {
            return false;
        }
        self.tick += 1;
        let set = self.set_index(node);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.0 == node) {
            line.1 = self.tick;
            line.2 = false; // placeholder
            true
        } else {
            false
        }
    }

    fn insert_on_write(&mut self, node: u64) -> WriteOutcome {
        if !self.cacheable(node) {
            return WriteOutcome::WriteThrough;
        }
        self.tick += 1;
        let ways = self.ways;
        let set = self.set_index(node);
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.0 == node) {
            line.1 = self.tick;
            line.2 = true;
            return WriteOutcome::Cached;
        }
        if lines.len() < ways {
            lines.push((node, self.tick, true));
            self.resident += 1;
            return WriteOutcome::Cached;
        }
        // Scan for the LRU victim, placeholders preferred.
        let victim = (0..lines.len())
            .min_by_key(|&i| (lines[i].2, lines[i].1))
            .expect("full set");
        let old = lines[victim];
        lines[victim] = (node, self.tick, true);
        if old.2 {
            WriteOutcome::CachedEvicting { victim: old.0 }
        } else {
            WriteOutcome::Cached
        }
    }
}

#[test]
fn mac_matches_per_set_reference_model() {
    run_cases(
        "mac_matches_per_set_reference_model",
        CASES,
        |g: &mut Gen| {
            let num_sets = g.range_usize(1, 48);
            let ways = g.range_usize(1, 4);
            let m1 = g.range_u32(1, 4);
            // Sometimes unclamped (u32::MAX), sometimes a shallow tree so the
            // clamp and bypass paths are exercised too.
            let leaf_level = if g.bool() {
                u32::MAX
            } else {
                m1 + g.range_u32(0, 8)
            };
            let mut mac = MergingAwareCache::new_for_tree(num_sets, ways, m1, leaf_level);
            let mut reference = RefMac::new(num_sets, ways, m1, leaf_level);
            assert_eq!(mac.deepest_level(), reference.deepest_level());
            let top = reference.deepest_level().min(20) + 2;
            let ops = g.vec(1, 300, |g| {
                let level = g.range_u32(0, top);
                let node = (1u64 << level) + g.below(1 << level);
                (node, g.bool())
            });
            for &(node, write) in &ops {
                if write {
                    assert_eq!(
                        mac.insert_on_write(node),
                        reference.insert_on_write(node),
                        "insert_on_write({node}) diverged"
                    );
                } else {
                    assert_eq!(
                        mac.lookup_for_read(node),
                        reference.lookup_for_read(node),
                        "lookup_for_read({node}) diverged"
                    );
                }
                assert_eq!(mac.resident(), reference.resident);
            }
        },
    );
}

// ---------- whole-ORAM state ------------------------------------------

#[test]
fn state_invariants_hold_under_random_access_mix() {
    run_cases(
        "state_invariants_hold_under_random_access_mix",
        CASES,
        |g: &mut Gen| {
            let seed = g.below(1000);
            let addrs = g.vec(1, 40, |g| g.below(512));
            let cfg = OramConfig::small_test();
            let levels = cfg.levels;
            let mut st = OramState::new(cfg, seed);
            for &addr in &addrs {
                let chain = st.chain(addr);
                let (mut old, mut new, _) = st.start_chain(addr);
                for (i, &u) in chain.iter().enumerate() {
                    st.load_path_range(old, 0, levels);
                    if i + 1 < chain.len() {
                        let (o, n, _) = st.chain_step(u, new, chain[i + 1]);
                        st.evict_range(old, 0, levels);
                        old = o;
                        new = n;
                    } else {
                        let _ = st.apply_op(u, new, Some(&[addr as u8]));
                        st.evict_range(old, 0, levels);
                    }
                }
            }
            assert!(st.check_invariants().is_ok());
        },
    );
}

// ---------- end-to-end RAM semantics ---------------------------------

#[test]
fn fork_controller_behaves_like_ram() {
    run_cases("fork_controller_behaves_like_ram", CASES, |g: &mut Gen| {
        let seed = g.below(500);
        let ops = g.vec(1, 48, |g| (g.below(48), g.option(|g| g.below(255) as u8)));
        let cfg = OramConfig::small_test();
        let block = cfg.block_bytes;
        let mut ctl = ForkPathController::new(cfg, ForkConfig::default(), dram(), seed);
        let mut shadow: std::collections::HashMap<u64, u8> = Default::default();
        let mut expected: std::collections::HashMap<u64, u8> = Default::default();
        for &(addr, wr) in &ops {
            match wr {
                Some(byte) => {
                    shadow.insert(addr, byte);
                    ctl.submit(addr, Op::Write, vec![byte; block], ctl.clock_ps());
                }
                None => {
                    let want = shadow.get(&addr).copied().unwrap_or(0);
                    let id = ctl.submit(addr, Op::Read, vec![], ctl.clock_ps());
                    expected.insert(id, want);
                }
            }
        }
        for c in ctl.run_to_idle() {
            if let Some(want) = expected.remove(&c.id) {
                assert_eq!(c.data[0], want, "addr {}", c.addr);
            }
        }
        assert!(expected.is_empty());
        assert!(ctl.state().check_invariants().is_ok());
    });
}

#[test]
fn label_queue_sizes_never_break_ram_semantics() {
    run_cases(
        "label_queue_sizes_never_break_ram_semantics",
        CASES,
        |g: &mut Gen| {
            let queue = g.range_usize(1, 16);
            let ops = g.vec(4, 24, |g| (g.below(24), g.below(255) as u8));
            let cfg = OramConfig::small_test();
            let block = cfg.block_bytes;
            let fork_cfg = ForkConfig {
                label_queue_size: queue,
                ..ForkConfig::default()
            };
            let mut ctl = ForkPathController::new(cfg, fork_cfg, dram(), 7);
            // Writes first (all at t=0 to force scheduling), then verify reads.
            let mut last: std::collections::HashMap<u64, u8> = Default::default();
            for &(addr, byte) in &ops {
                last.insert(addr, byte);
                ctl.submit(addr, Op::Write, vec![byte; block], 0);
            }
            ctl.run_to_idle();
            let mut expected = std::collections::HashMap::new();
            for (&addr, &byte) in &last {
                let id = ctl.submit(addr, Op::Read, vec![], ctl.clock_ps());
                expected.insert(id, byte);
            }
            for c in ctl.run_to_idle() {
                if let Some(want) = expected.remove(&c.id) {
                    assert_eq!(c.data[0], want);
                }
            }
            assert!(expected.is_empty());
        },
    );
}

// ---------- fork-level clamping (merge stage) -------------------------

#[test]
fn fork_floor_stays_inside_the_path() {
    use fork_path_oram::core::PathMerger;
    run_cases("fork_floor_stays_inside_the_path", CASES, |g: &mut Gen| {
        let levels = g.range_u32(1, 12);
        let leaves = 1u64 << levels;
        let a = g.below(leaves);
        // Exercise the identical-label corner explicitly in some cases.
        let b = if g.bool() { a } else { g.below(leaves) };
        let mut m = PathMerger::new(true);
        assert_eq!(m.read_floor(levels, a), 0, "first access reads fully");
        m.commit(a);
        let floor = m.read_floor(levels, b);
        assert!(
            floor <= levels,
            "fork floor {floor} escapes the tree (levels={levels})"
        );
        assert_eq!(floor, (divergence_level(levels, a, b) + 1).min(levels));
        // A merged read always touches at least one new bucket; identical
        // consecutive paths re-read exactly the leaf bucket.
        let buckets_read = levels - floor + 1;
        assert!(buckets_read >= 1, "a merged read never touches 0 buckets");
        if a == b {
            assert_eq!(floor, levels);
            assert_eq!(buckets_read, 1, "identical paths re-read only the leaf");
        } else {
            // Exactly the buckets below the divergence are new.
            assert_eq!(buckets_read, levels - divergence_level(levels, a, b));
        }
        // The refill stops obey the same clamp.
        let mut m2 = PathMerger::new(true);
        m2.commit(a);
        assert!(m2.write_stop(levels, a, Some(b)) <= levels);
        assert!(PathMerger::replacement_stop(levels, a, b) <= levels);
    });
}

// ---------- trace spine vs legacy statistics --------------------------

#[test]
fn trace_counters_match_legacy_stats_exactly() {
    use fork_path_oram::trace::Counter;
    // A 10k-access mixed workload (reads, writes, hot-set reuse, bursts):
    // every counter the trace spine accumulates must agree exactly with
    // the independently-stored aggregate OramStats and DramStats records.
    run_cases(
        "trace_counters_match_legacy_stats_exactly",
        2,
        |g: &mut Gen| {
            let seed = g.below(1000);
            let cfg = OramConfig::small_test();
            let data_blocks = cfg.data_blocks;
            let block = cfg.block_bytes;
            let mut ctl = ForkPathController::new(cfg, ForkConfig::default(), dram(), seed);
            let mut submitted = 0u64;
            let mut completions = 0u64;
            while ctl.stats().oram_accesses < 10_000 {
                for _ in 0..64 {
                    let addr = match g.below(4) {
                        0 => g.below(data_blocks),
                        1 => g.below(16), // hot set
                        2 => (submitted * 31) % data_blocks,
                        _ => g.below(64),
                    };
                    let (op, data) = if g.bool() {
                        (Op::Write, vec![(submitted & 0xff) as u8; block])
                    } else {
                        (Op::Read, vec![])
                    };
                    ctl.submit(addr, op, data, ctl.clock_ps());
                    submitted += 1;
                }
                completions += ctl.run_to_idle().len() as u64;
            }
            completions += ctl.run_to_idle().len() as u64;

            let t = ctl.trace().clone();
            let s = ctl.stats().clone();
            let d = ctl.dram().stats().clone();
            // Request lifecycle counters.
            assert_eq!(t.counter(Counter::RequestsSubmitted), submitted);
            assert_eq!(t.counter(Counter::RequestsCompleted), completions);
            assert_eq!(t.latency_hist().count(), completions);
            // Stage counters vs the independently-stored aggregate record.
            assert_eq!(t.counter(Counter::SchedRounds), s.sched_rounds);
            assert_eq!(t.counter(Counter::SchedReadyReals), s.sched_ready_reals);
            assert_eq!(t.counter(Counter::DummiesExecuted), s.dummy_accesses);
            assert_eq!(t.counter(Counter::DummiesReplaced), s.dummies_replaced);
            assert_eq!(t.counter(Counter::CacheHits), s.cache_hits);
            assert_eq!(t.counter(Counter::CacheMisses), s.cache_misses);
            assert_eq!(t.counter(Counter::DramBlocksRead), s.dram_blocks_read);
            assert_eq!(t.counter(Counter::DramBlocksWritten), s.dram_blocks_written);
            assert_eq!(t.counter(Counter::BucketsWritten), s.buckets_written);
            // DRAM command stream vs the channel's own stats record.
            assert_eq!(t.counter(Counter::DramActs), d.activations);
            assert_eq!(t.counter(Counter::DramReads), d.reads);
            assert_eq!(t.counter(Counter::DramWrites), d.writes);
            assert_eq!(t.counter(Counter::DramRefs), d.refreshes);
            assert_eq!(t.counter(Counter::DramRefsSkipped), d.refreshes_skipped);
            // Stash flow conservation.
            assert_eq!(
                t.counter(Counter::StashPushes) - t.counter(Counter::StashEvicts),
                ctl.state().stash().len() as u64
            );
            // Occupancy histogram sampled once per access.
            assert_eq!(t.occupancy_hist().count(), s.oram_accesses);
        },
    );
}
