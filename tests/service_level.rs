//! Integration tests for the sharded serving layer (`fp-service`):
//! backpressure, deadline accounting, drain/shutdown under load, shard
//! scaling, and the cross-rerun determinism property the closed-loop mode
//! guarantees.

use std::sync::atomic::{AtomicU64, Ordering};

use fork_path_oram::core::Scheme;
use fork_path_oram::propcheck::{run_cases, Gen};
use fork_path_oram::service::{
    CompletionStatus, OramService, ServiceConfig, ServiceRequest, SubmitError,
};
use fork_path_oram::workloads::mixes;

/// A small config for tests: the fast-test geometry shrunk further so each
/// case stays in tens of milliseconds.
fn small_cfg(shards: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::fast_test(shards);
    cfg.oram.data_blocks = 1 << 12;
    cfg.oram.levels = 11;
    cfg.oram.onchip_posmap_entries = 1 << 6;
    cfg
}

// ---------- determinism (the closed-loop property) ------------------

/// Same seed + shard count => bit-identical aggregate trace counters and
/// request accounting, no matter how the host scheduler interleaves the
/// worker threads. This is the property that makes `service_bench` numbers
/// comparable across PRs; it holds because each shard's client pool is
/// driven by the shard's own completions in *simulated* time.
#[test]
fn closed_loop_reruns_are_counter_identical() {
    run_cases("service-closed-loop-determinism", 4, |g: &mut Gen| {
        let shards = 1 << g.range(0, 2); // 1, 2, or 4
        let seed = g.below(u64::MAX);
        let budget = g.range(64, 256);
        let run = || {
            let mut cfg = small_cfg(shards as usize);
            cfg.seed = seed;
            OramService::run_closed_loop(cfg, &mixes::all()[0].programs, budget)
                .expect("closed loop must not fail")
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "shards={shards} seed={seed:#x} budget={budget}: reruns diverged"
        );
        assert_eq!(a.completed(), budget);
        assert_eq!(a.sim_finish_ps(), b.sim_finish_ps());
    });
}

/// The scheme-agnostic engine layer end to end: the *same* `ShardEngine`
/// worker path serves both traditional Path ORAM and Fork Path, selected
/// only by `ServiceConfig::scheme`. Both runs are rerun-deterministic
/// (identical per-shard fingerprints), and Fork Path's redundancy removal
/// shows up as strictly higher aggregate simulated throughput.
#[test]
fn traditional_and_fork_serve_through_the_same_engine_path() {
    let run = |scheme: Scheme| {
        let cfg = || {
            let mut cfg = small_cfg(4);
            cfg.scheme = scheme.clone();
            cfg
        };
        let a = OramService::run_closed_loop(cfg(), &mixes::all()[0].programs, 512)
            .expect("closed loop must not fail");
        let b = OramService::run_closed_loop(cfg(), &mixes::all()[0].programs, 512)
            .expect("closed loop must not fail");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "scheme {}: reruns diverged",
            scheme.label()
        );
        assert_eq!(a.completed(), 512, "scheme {}", scheme.label());
        a
    };
    let traditional = run(Scheme::Traditional);
    let fork = run(Scheme::ForkDefault);
    assert!(
        fork.sim_requests_per_sec() > traditional.sim_requests_per_sec(),
        "fork {:.0} req/s must beat traditional {:.0} req/s",
        fork.sim_requests_per_sec(),
        traditional.sim_requests_per_sec()
    );
}

// ---------- backpressure --------------------------------------------

/// Flooding one shard faster than it can serve must surface `Busy` to the
/// producer (and count the rejections) rather than blocking or dropping
/// silently; everything accepted still completes.
#[test]
fn overload_surfaces_busy_and_loses_nothing() {
    let mut cfg = small_cfg(1);
    cfg.queue_depth = 4;
    let (stats, (accepted, rejected)) = OramService::serve(cfg, |h| {
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        // Push far more than queue_depth with no pacing: most submissions
        // must bounce off the full queue.
        for i in 0..512u64 {
            match h.submit(ServiceRequest::read(i % 4096, 0, i)) {
                Ok(_) => accepted += 1,
                Err(SubmitError::Busy) => rejected += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        (accepted, rejected)
    })
    .unwrap();
    assert!(
        rejected > 0,
        "a 4-deep queue cannot absorb 512 instant submissions"
    );
    assert_eq!(accepted + rejected, 512);
    assert_eq!(stats.rejected_busy(), rejected);
    assert_eq!(stats.enqueued(), accepted);
    assert_eq!(stats.completed(), accepted, "accepted work must all finish");
}

// ---------- deadlines ------------------------------------------------

/// A request whose deadline already passed at admission is dropped as
/// Expired (no ORAM access); a completion past its deadline counts Late.
#[test]
fn deadlines_classify_expired_and_late() {
    let cfg = small_cfg(1);
    let (stats, ()) = OramService::serve(cfg, |h| {
        // Deadline in the past at admission -> Expired.
        let mut dead = ServiceRequest::read(17, 1_000_000, 1);
        dead.deadline_ps = Some(999);
        h.submit(dead).unwrap();
        // A 1 ps deadline cannot cover a multi-microsecond ORAM access ->
        // completes, but Late.
        let mut tight = ServiceRequest::read(33, 0, 2);
        tight.deadline_ps = Some(1);
        // arrival 0 with deadline 1 >= arrival: admitted, then late.
        tight.arrival_ps = 0;
        h.submit(tight).unwrap();
        // No deadline -> plain Ok.
        h.submit(ServiceRequest::read(49, 0, 3)).unwrap();
    })
    .unwrap();
    assert_eq!(stats.expired(), 1);
    assert_eq!(stats.completed_late(), 1);
    assert_eq!(
        stats.completed(),
        3,
        "expired + late + ok all produce completions"
    );
}

/// The service-wide relative deadline applies to requests that carry none.
#[test]
fn default_relative_deadline_applies() {
    let mut cfg = small_cfg(1);
    cfg.deadline_ps = Some(1); // 1 ps after arrival: everything is late
    let (stats, ()) = OramService::serve(cfg, |h| {
        for i in 0..4u64 {
            h.submit(ServiceRequest::read(i * 11, 0, i)).unwrap();
        }
    })
    .unwrap();
    assert_eq!(stats.completed(), 4);
    assert_eq!(stats.completed_late(), 4);
    assert_eq!(stats.expired(), 0);
}

// ---------- drain / shutdown ----------------------------------------

/// Shutdown while producers are still mid-burst and workers mid-access
/// must terminate (no deadlock) and account for every accepted request.
/// The driver returning triggers the drain, so ending it with requests
/// still queued and in flight exercises exactly that window.
#[test]
fn drain_under_load_terminates_and_accounts() {
    let mut cfg = small_cfg(4);
    cfg.queue_depth = 8;
    let accepted = AtomicU64::new(0);
    let (stats, ()) = OramService::serve(cfg, |h| {
        for i in 0..256u64 {
            if h.submit(ServiceRequest::read(i % 4096, 0, i)).is_ok() {
                accepted.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Return immediately: queues are still loaded, shards mid-flight.
    })
    .unwrap();
    let accepted = accepted.load(Ordering::Relaxed);
    assert!(accepted > 0);
    assert_eq!(stats.completed(), accepted, "drain must finish queued work");
    let done_tags: Vec<_> = stats
        .per_shard
        .iter()
        .map(|s| s.counters.completed)
        .collect();
    assert_eq!(done_tags.iter().sum::<u64>(), accepted);
}

/// Submissions after drain has begun are refused with Shutdown, not lost.
#[test]
fn post_drain_submissions_are_refused() {
    let cfg = small_cfg(1);
    let (_, handle) = OramService::serve(cfg, |h| h.clone()).unwrap();
    assert_eq!(
        handle.submit(ServiceRequest::read(1, 0, 0)),
        Err(SubmitError::Shutdown)
    );
}

// ---------- scaling --------------------------------------------------

/// Aggregate *simulated* throughput must grow with the shard count on a
/// fixed workload: shards serve smaller trees and their simulated clocks
/// advance concurrently. (Wall-clock throughput is host-dependent and not
/// asserted here; `service_bench` tracks it.)
#[test]
fn sim_throughput_scales_with_shards() {
    let run = |shards: usize| {
        let cfg = small_cfg(shards);
        OramService::run_closed_loop(cfg, &mixes::all()[0].programs, 512)
            .unwrap()
            .sim_requests_per_sec()
    };
    let one = run(1);
    let two = run(2);
    let four = run(4);
    assert!(one > 0.0);
    assert!(
        two > one,
        "2 shards ({two:.0} req/s) must beat 1 ({one:.0})"
    );
    assert!(
        four > two,
        "4 shards ({four:.0} req/s) must beat 2 ({two:.0})"
    );
}

// ---------- completions ----------------------------------------------

/// Reads round-trip through sharding: completions surface global
/// addresses, correct tags, and Ok status.
#[test]
fn completions_carry_global_addresses_and_tags() {
    let cfg = small_cfg(4);
    let (stats, done) = OramService::serve(cfg, |h| {
        for i in 0..32u64 {
            let addr = i * 97 % 4096;
            while h.submit(ServiceRequest::read(addr, 0, addr)) == Err(SubmitError::Busy) {
                std::thread::yield_now();
            }
        }
        h.clone()
    })
    .map(|(stats, h)| (stats, h.drain_completions()))
    .unwrap();
    assert_eq!(stats.completed(), 32);
    assert_eq!(done.len(), 32);
    for c in &done {
        assert_eq!(c.addr, c.tag, "global address must round-trip");
        assert_eq!(c.status, CompletionStatus::Ok);
        assert!(c.latency_ps > 0);
    }
}
