//! Integration tests for the sharded serving layer (`fp-service`):
//! backpressure, deadline accounting, drain/shutdown under load, shard
//! scaling, and the cross-rerun determinism property the closed-loop mode
//! guarantees.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use fork_path_oram::core::Scheme;
use fork_path_oram::path_oram::Op;
use fork_path_oram::propcheck::{run_cases, Gen};
use fork_path_oram::service::{
    CompletionStatus, OramService, ServiceConfig, ServiceRequest, SubmitError,
};
use fork_path_oram::trace::Counter;
use fork_path_oram::workloads::{mixes, zipf};

/// A small config for tests: the fast-test geometry shrunk further so each
/// case stays in tens of milliseconds.
fn small_cfg(shards: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::fast_test(shards);
    cfg.oram.data_blocks = 1 << 12;
    cfg.oram.levels = 11;
    cfg.oram.onchip_posmap_entries = 1 << 6;
    cfg
}

// ---------- determinism (the closed-loop property) ------------------

/// Same seed + shard count => bit-identical aggregate trace counters and
/// request accounting, no matter how the host scheduler interleaves the
/// worker threads. This is the property that makes `service_bench` numbers
/// comparable across PRs; it holds because each shard's client pool is
/// driven by the shard's own completions in *simulated* time.
#[test]
fn closed_loop_reruns_are_counter_identical() {
    run_cases("service-closed-loop-determinism", 4, |g: &mut Gen| {
        let shards = 1 << g.range(0, 2); // 1, 2, or 4
        let seed = g.below(u64::MAX);
        let budget = g.range(64, 256);
        let run = || {
            let mut cfg = small_cfg(shards as usize);
            cfg.seed = seed;
            OramService::run_closed_loop(cfg, &mixes::all()[0].programs, budget)
                .expect("closed loop must not fail")
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "shards={shards} seed={seed:#x} budget={budget}: reruns diverged"
        );
        assert_eq!(a.completed(), budget);
        assert_eq!(a.sim_finish_ps(), b.sim_finish_ps());
    });
}

/// The scheme-agnostic engine layer end to end: the *same* `ShardEngine`
/// worker path serves both traditional Path ORAM and Fork Path, selected
/// only by `ServiceConfig::scheme`. Both runs are rerun-deterministic
/// (identical per-shard fingerprints), and Fork Path's redundancy removal
/// shows up as strictly higher aggregate simulated throughput.
#[test]
fn traditional_and_fork_serve_through_the_same_engine_path() {
    let run = |scheme: Scheme| {
        let cfg = || {
            let mut cfg = small_cfg(4);
            cfg.scheme = scheme.clone();
            cfg
        };
        let a = OramService::run_closed_loop(cfg(), &mixes::all()[0].programs, 512)
            .expect("closed loop must not fail");
        let b = OramService::run_closed_loop(cfg(), &mixes::all()[0].programs, 512)
            .expect("closed loop must not fail");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "scheme {}: reruns diverged",
            scheme.label()
        );
        assert_eq!(a.completed(), 512, "scheme {}", scheme.label());
        a
    };
    let traditional = run(Scheme::Traditional);
    let fork = run(Scheme::ForkDefault);
    assert!(
        fork.sim_requests_per_sec() > traditional.sim_requests_per_sec(),
        "fork {:.0} req/s must beat traditional {:.0} req/s",
        fork.sim_requests_per_sec(),
        traditional.sim_requests_per_sec()
    );
}

// ---------- backpressure --------------------------------------------

/// Flooding one shard faster than it can serve must surface `Busy` to the
/// producer (and count the rejections) rather than blocking or dropping
/// silently; everything accepted still completes.
#[test]
fn overload_surfaces_busy_and_loses_nothing() {
    let mut cfg = small_cfg(1);
    cfg.queue_depth = 4;
    let (stats, (accepted, rejected)) = OramService::serve(cfg, |h| {
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        // Push far more than queue_depth with no pacing: most submissions
        // must bounce off the full queue.
        for i in 0..512u64 {
            match h.submit(ServiceRequest::read(i % 4096, 0, i)) {
                Ok(_) => accepted += 1,
                Err(SubmitError::Busy) => rejected += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        (accepted, rejected)
    })
    .unwrap();
    assert!(
        rejected > 0,
        "a 4-deep queue cannot absorb 512 instant submissions"
    );
    assert_eq!(accepted + rejected, 512);
    assert_eq!(stats.rejected_busy(), rejected);
    assert_eq!(stats.enqueued(), accepted);
    assert_eq!(stats.completed(), accepted, "accepted work must all finish");
}

// ---------- deadlines ------------------------------------------------

/// A request whose deadline already passed at admission is dropped as
/// Expired (no ORAM access); a completion past its deadline counts Late.
#[test]
fn deadlines_classify_expired_and_late() {
    let cfg = small_cfg(1);
    let (stats, ()) = OramService::serve(cfg, |h| {
        // Deadline in the past at admission -> Expired.
        let mut dead = ServiceRequest::read(17, 1_000_000, 1);
        dead.deadline_ps = Some(999);
        h.submit(dead).unwrap();
        // A 1 ps deadline cannot cover a multi-microsecond ORAM access ->
        // completes, but Late.
        let mut tight = ServiceRequest::read(33, 0, 2);
        tight.deadline_ps = Some(1);
        // arrival 0 with deadline 1 >= arrival: admitted, then late.
        tight.arrival_ps = 0;
        h.submit(tight).unwrap();
        // No deadline -> plain Ok.
        h.submit(ServiceRequest::read(49, 0, 3)).unwrap();
    })
    .unwrap();
    assert_eq!(stats.expired(), 1);
    assert_eq!(stats.completed_late(), 1);
    assert_eq!(
        stats.completed(),
        2,
        "only served requests count as completed; the expired one does not"
    );
    assert_eq!(
        stats.enqueued(),
        stats.admitted() + stats.expired(),
        "every accepted request is either admitted or shed"
    );
}

/// The service-wide relative deadline applies to requests that carry none.
#[test]
fn default_relative_deadline_applies() {
    let mut cfg = small_cfg(1);
    cfg.deadline_ps = Some(1); // 1 ps after arrival: everything is late
    let (stats, ()) = OramService::serve(cfg, |h| {
        for i in 0..4u64 {
            h.submit(ServiceRequest::read(i * 11, 0, i)).unwrap();
        }
    })
    .unwrap();
    assert_eq!(stats.completed(), 4);
    assert_eq!(stats.completed_late(), 4);
    assert_eq!(stats.expired(), 0);
}

/// The accounting ledger balances on randomized runs mixing normal and
/// already-expired requests: every accepted request is either admitted to
/// the ORAM or shed at admission (`enqueued == admitted + expired`), and at
/// drain everything admitted has been served (`completed == admitted`).
/// This is the invariant behind every req/s figure the service reports —
/// expired requests must never inflate the served count.
#[test]
fn accounting_ledger_balances_under_random_expirations() {
    run_cases("service-accounting-ledger", 4, |g: &mut Gen| {
        let shards = 1usize << g.range(0, 2); // 1, 2, or 4
        let total = g.range(48, 160);
        let expired_target = g.range(1, total / 2);
        let cfg = small_cfg(shards);
        let (stats, done) = OramService::serve(cfg, |h| {
            for i in 0..total {
                let mut req = ServiceRequest::read((i * 131) % 4096, 1_000, i);
                if i < expired_target {
                    // Deadline already passed at the 1000 ps arrival:
                    // shed at admission, never served.
                    req.deadline_ps = Some(1);
                }
                while h.submit(req.clone()) == Err(SubmitError::Busy) {
                    std::thread::yield_now();
                }
            }
            h.clone()
        })
        .map(|(stats, h)| (stats, h.drain_completions()))
        .unwrap();
        assert_eq!(stats.enqueued(), total, "nothing accepted may vanish");
        assert_eq!(stats.expired(), expired_target);
        assert_eq!(
            stats.enqueued(),
            stats.admitted() + stats.expired(),
            "admission ledger must balance"
        );
        assert_eq!(
            stats.completed(),
            stats.admitted(),
            "at drain, everything admitted has been served"
        );
        // The completion stream agrees with the counters, status by status.
        let expired = done
            .iter()
            .filter(|c| c.status == CompletionStatus::Expired)
            .count() as u64;
        assert_eq!(expired, stats.expired());
        assert_eq!(done.len() as u64, stats.completed() + stats.expired());
    });
}

// ---------- drain / shutdown ----------------------------------------

/// Shutdown while producers are still mid-burst and workers mid-access
/// must terminate (no deadlock) and account for every accepted request.
/// The driver returning triggers the drain, so ending it with requests
/// still queued and in flight exercises exactly that window.
#[test]
fn drain_under_load_terminates_and_accounts() {
    let mut cfg = small_cfg(4);
    cfg.queue_depth = 8;
    let accepted = AtomicU64::new(0);
    let (stats, ()) = OramService::serve(cfg, |h| {
        for i in 0..256u64 {
            if h.submit(ServiceRequest::read(i % 4096, 0, i)).is_ok() {
                accepted.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Return immediately: queues are still loaded, shards mid-flight.
    })
    .unwrap();
    let accepted = accepted.load(Ordering::Relaxed);
    assert!(accepted > 0);
    assert_eq!(stats.completed(), accepted, "drain must finish queued work");
    let done_tags: Vec<_> = stats
        .per_shard
        .iter()
        .map(|s| s.counters.completed)
        .collect();
    assert_eq!(done_tags.iter().sum::<u64>(), accepted);
}

/// Submissions after drain has begun are refused with Shutdown, not lost.
#[test]
fn post_drain_submissions_are_refused() {
    let cfg = small_cfg(1);
    let (_, handle) = OramService::serve(cfg, |h| h.clone()).unwrap();
    assert_eq!(
        handle.submit(ServiceRequest::read(1, 0, 0)),
        Err(SubmitError::Shutdown)
    );
}

// ---------- scaling --------------------------------------------------

/// Aggregate *simulated* throughput must grow with the shard count on a
/// fixed workload: shards serve smaller trees and their simulated clocks
/// advance concurrently. (Wall-clock throughput is host-dependent and not
/// asserted here; `service_bench` tracks it.)
#[test]
fn sim_throughput_scales_with_shards() {
    let run = |shards: usize| {
        let cfg = small_cfg(shards);
        OramService::run_closed_loop(cfg, &mixes::all()[0].programs, 512)
            .unwrap()
            .sim_requests_per_sec()
    };
    let one = run(1);
    let two = run(2);
    let four = run(4);
    assert!(one > 0.0);
    assert!(
        two > one,
        "2 shards ({two:.0} req/s) must beat 1 ({one:.0})"
    );
    assert!(
        four > two,
        "4 shards ({four:.0} req/s) must beat 2 ({two:.0})"
    );
}

// ---------- completions ----------------------------------------------

/// Reads round-trip through sharding: completions surface global
/// addresses, correct tags, and Ok status.
#[test]
fn completions_carry_global_addresses_and_tags() {
    let cfg = small_cfg(4);
    let (stats, done) = OramService::serve(cfg, |h| {
        for i in 0..32u64 {
            let addr = i * 97 % 4096;
            while h.submit(ServiceRequest::read(addr, 0, addr)) == Err(SubmitError::Busy) {
                std::thread::yield_now();
            }
        }
        h.clone()
    })
    .map(|(stats, h)| (stats, h.drain_completions()))
    .unwrap();
    assert_eq!(stats.completed(), 32);
    assert_eq!(done.len(), 32);
    for c in &done {
        assert_eq!(c.addr, c.tag, "global address must round-trip");
        assert_eq!(c.status, CompletionStatus::Ok);
        assert!(c.latency_ps > 0);
    }
}

// ---------- coalescing ------------------------------------------------

/// Runs one Zipf schedule through trace replay and indexes the
/// completions by tag.
fn replay(
    mut cfg: ServiceConfig,
    schedule: &[zipf::ScheduledRequest],
    coalesce: bool,
) -> (
    fork_path_oram::service::ServiceStats,
    BTreeMap<u64, (CompletionStatus, Vec<u8>)>,
) {
    cfg.coalesce = coalesce;
    let block_bytes = cfg.oram.block_bytes;
    let requests: Vec<ServiceRequest> = schedule
        .iter()
        .map(|r| {
            let data = match r.op {
                Op::Write => zipf::write_payload(r.addr, r.tag, block_bytes),
                Op::Read => Vec::new(),
            };
            ServiceRequest {
                addr: r.addr,
                op: r.op,
                data,
                arrival_ps: r.arrival_ps,
                deadline_ps: None,
                tag: r.tag,
            }
        })
        .collect();
    let (stats, done) = OramService::run_trace(cfg, requests).expect("trace replay must not fail");
    let by_tag = done
        .into_iter()
        .map(|c| (c.tag, (c.status, c.data)))
        .collect();
    (stats, by_tag)
}

/// Coalescing is invisible to clients: under randomized hot Zipf
/// schedules, a coalesced and a non-coalesced replay of the *same*
/// schedule serve every request with an identical status and identical
/// data, tag by tag — while the coalesced run submits strictly fewer
/// requests to the ORAM engines. This is the data-equivalence property
/// that makes the `--coalesce` flag safe to enable: attaching a request
/// as a waiter instead of running its own access never changes what the
/// client observes (the engine's per-address hazard rules already
/// serialize same-address operations in arrival order; the coalescing
/// index preserves that order among waiters).
#[test]
fn coalescing_preserves_per_request_results() {
    run_cases("service-coalescing-equivalence", 4, |g: &mut Gen| {
        let cfg = small_cfg(4);
        let mut zc = zipf::ZipfConfig::hot(
            cfg.oram.data_blocks,
            g.range(300, 700),
            cfg.oram.block_bytes,
            g.below(u64::MAX),
        );
        // Wander around the hot default so the property is not tied to
        // one operating point.
        zc.theta = 0.9 + g.range(0, 60) as f64 / 100.0;
        zc.write_fraction = g.range(0, 30) as f64 / 100.0;
        let schedule = zipf::generate(&zc);
        let (plain, plain_tags) = replay(cfg.clone(), &schedule, false);
        let (coal, coal_tags) = replay(cfg, &schedule, true);

        // Same served count, same tags, same observable result per tag.
        assert_eq!(plain.completed(), schedule.len() as u64);
        assert_eq!(coal.completed(), plain.completed());
        assert_eq!(plain_tags.len(), coal_tags.len());
        for (tag, (status, data)) in &plain_tags {
            let (c_status, c_data) = &coal_tags[tag];
            assert_eq!(status, c_status, "tag {tag}: status diverged");
            assert_eq!(data, c_data, "tag {tag}: data diverged");
        }

        // The whole point: waiters never reach the engines. Submissions
        // include coalesce write-back flushes, so the saving is net.
        let submitted = |s: &fork_path_oram::service::ServiceStats| {
            s.trace_counter_totals()[Counter::RequestsSubmitted as usize]
        };
        let attached = coal.coalesced_reads() + coal.coalesced_writes();
        assert!(
            attached > 0,
            "a hot Zipf schedule (theta={:.2}) must coalesce something",
            zc.theta
        );
        assert_eq!(
            submitted(&coal) + attached - coal.coalesce_flushes(),
            submitted(&plain),
            "every request either reaches an engine or attaches as a waiter"
        );
        assert!(
            submitted(&coal) < submitted(&plain),
            "coalescing must shrink engine traffic net of flushes"
        );
    });
}
