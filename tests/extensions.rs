//! Integration tests for the beyond-the-paper extensions: Merkle integrity
//! riding on ORAM traffic, fixed-rate timing protection, the PosMap
//! Lookaside Buffer, AES counter mode, and trace record/replay.

use fork_path_oram::core::timing::{enforce_fixed_rate, idle_cost, NoFeedback};
use fork_path_oram::core::{ForkConfig, ForkPathController};
use fork_path_oram::crypto::{Aes128, BlockCipher, Nonce};
use fork_path_oram::dram::{DramConfig, DramSystem};
use fork_path_oram::path_oram::integrity::{siphash24, MerkleTree};
use fork_path_oram::path_oram::{Op, OramConfig};
use fork_path_oram::sim::{run_workload, Scheme, SystemConfig};
use fork_path_oram::workloads::cpu::MultiCoreWorkload;
use fork_path_oram::workloads::{mixes, trace::Trace};

fn dram() -> DramSystem {
    DramSystem::new(DramConfig::ddr3_1600(2))
}

// ---------- Merkle integrity over live ORAM traffic ----------------------

#[test]
fn merkle_tree_tracks_a_full_oram_run() {
    // Shadow the untrusted tree with a Merkle tree: after every ORAM
    // operation, re-hash the touched paths and verify a sample of buckets.
    let cfg = OramConfig::small_test();
    let levels = cfg.levels;
    let mut ctl = ForkPathController::new(cfg, ForkConfig::default(), dram(), 51);
    let mut merkle = MerkleTree::new(levels, [11, 22]);

    for a in 0..48u64 {
        ctl.submit(a, Op::Write, vec![a as u8; 16], ctl.clock_ps());
    }
    ctl.run_to_idle();

    // Hash the current untrusted state wholesale (a verifier snapshot).
    let contents: Vec<(u64, Vec<u8>)> = ctl
        .state()
        .tree()
        .iter_buckets()
        .map(|(node, blocks)| {
            let mut bytes = Vec::new();
            for b in &blocks {
                bytes.extend_from_slice(&b.addr.to_le_bytes());
                bytes.extend_from_slice(&b.data);
            }
            (node, bytes)
        })
        .collect();
    for (node, bytes) in &contents {
        merkle.update_bucket(*node, bytes);
    }
    // Rehash every leaf-to-root path that has content.
    for (node, _) in &contents {
        let mut n = *node;
        while n < (1 << levels) {
            n *= 2; // descend to a leaf under this node
        }
        merkle.rehash_path(levels, n - (1 << levels));
    }
    // Full rehash of all leaves keeps ancestors coherent.
    for leaf in 0..(1u64 << levels.min(9)) {
        merkle.rehash_path(levels, leaf);
    }

    // Every stored bucket verifies; a tampered byte string does not.
    for (node, bytes) in contents.iter().take(32) {
        merkle.verify_bucket(*node, bytes).unwrap();
        let mut bad = bytes.clone();
        if bad.is_empty() {
            bad.push(1);
        } else {
            bad[0] ^= 0xFF;
        }
        assert!(merkle.verify_bucket(*node, &bad).is_err(), "node {node}");
    }
}

#[test]
fn siphash_distributes_over_buckets() {
    // Avalanche sanity: one-bit input changes flip about half the output.
    let key = [7u64, 13u64];
    let base = siphash24(key, b"bucket contents here");
    let variant = siphash24(key, b"bucket contents hers");
    let flipped = (base ^ variant).count_ones();
    assert!(
        (12..=52).contains(&flipped),
        "weak diffusion: {flipped} bits"
    );
}

// ---------- Fixed-rate timing protection --------------------------------

#[test]
fn fixed_rate_keeps_access_cadence_data_independent() {
    // Compare two very different programs under protection: the number of
    // accesses in the window must be driven by the rate, not the program.
    let run = |requests: u64| {
        let mut ctl =
            ForkPathController::new(OramConfig::small_test(), ForkConfig::default(), dram(), 52);
        for a in 0..requests {
            ctl.submit(a, Op::Read, vec![], 0);
        }
        let mut src = NoFeedback;
        let _ = enforce_fixed_rate(&mut ctl, &mut src, 40_000_000, 500_000);
        ctl.stats().oram_accesses
    };
    let busy = run(60);
    let quiet = run(2);
    let ratio = busy as f64 / quiet as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "access counts must not differ wildly under protection: {busy} vs {quiet}"
    );
}

#[test]
fn protection_cost_scales_with_window() {
    let mut ctl =
        ForkPathController::new(OramConfig::small_test(), ForkConfig::default(), dram(), 53);
    let short = idle_cost(&mut ctl, 10_000_000, 500_000).forced_dummies;
    let long = idle_cost(&mut ctl, 40_000_000, 500_000).forced_dummies;
    assert!(long > 2 * short, "{long} vs {short}");
}

// ---------- PLB at system level ------------------------------------------

#[test]
fn plb_improves_system_latency_on_hot_working_sets() {
    let cfg = SystemConfig::fast_test();
    let mut mix = mixes::all()[2].clone();
    for p in &mut mix.programs {
        p.working_set_blocks = 1 << 11; // hot: heavy posmap reuse
        p.avg_gap_ns = 400.0;
    }
    let wl = || MultiCoreWorkload::from_mix(&mix, 120, 54);
    let plain = run_workload(&cfg, Scheme::ForkDefault, wl());
    let plb = run_workload(
        &cfg,
        Scheme::Fork(ForkConfig {
            plb_blocks: 64,
            ..ForkConfig::default()
        }),
        wl(),
    );
    assert!(
        plb.oram_accesses < plain.oram_accesses,
        "PLB cuts accesses: {} vs {}",
        plb.oram_accesses,
        plain.oram_accesses
    );
    assert!(plb.oram_latency_ns <= plain.oram_latency_ns * 1.05);
}

// ---------- AES counter mode ---------------------------------------------

#[test]
fn aes_and_chacha_are_interchangeable_probabilistic_ciphers() {
    // Same API contract: fresh nonce => fresh ciphertext, roundtrip exact.
    let aes = Aes128::new([3u8; 16]);
    let chacha = BlockCipher::new([3u8; 32]);
    let plain = vec![0x5Au8; 64];

    let mut aes_a = plain.clone();
    aes.apply_ctr([1u8; 12], &mut aes_a);
    let mut aes_b = plain.clone();
    aes.apply_ctr([2u8; 12], &mut aes_b);
    assert_ne!(aes_a, aes_b);
    aes.apply_ctr([1u8; 12], &mut aes_a);
    assert_eq!(aes_a, plain);

    let cha_a = chacha.encrypt(Nonce::new(1, 0), &plain);
    let cha_b = chacha.encrypt(Nonce::new(2, 0), &plain);
    assert_ne!(cha_a, cha_b);
    assert_eq!(chacha.decrypt(Nonce::new(1, 0), &cha_a), plain);
}

// ---------- Trace record / replay ----------------------------------------

#[test]
fn captured_trace_replays_identically_through_the_simulator() {
    let mut mix = mixes::all()[4].clone();
    for p in &mut mix.programs {
        p.working_set_blocks = 1 << 10;
    }
    let trace = Trace::capture(MultiCoreWorkload::from_mix(&mix, 60, 55), "Mix5/55");
    assert_eq!(trace.len(), 240);

    // Feed the trace's records straight into a controller, open loop. Four
    // per-core regions of 2^10 blocks need a 2^12-block address space.
    let mut oram_cfg = OramConfig::small_test();
    oram_cfg.data_blocks = 1 << 12;
    oram_cfg.levels = 11;
    let mut ctl = ForkPathController::new(oram_cfg, ForkConfig::default(), dram(), 56);
    for r in &trace.records {
        let op = if r.is_write { Op::Write } else { Op::Read };
        let data = if r.is_write { vec![1u8; 16] } else { vec![] };
        ctl.submit(r.addr, op, data, r.issue_ps);
    }
    let done = ctl.run_to_idle();
    assert_eq!(
        done.len() as usize + 0,
        trace.len() - count_cancelled(&trace)
    );
    ctl.state().check_invariants().unwrap();

    // Round-trip through the text format and confirm byte equality.
    let back = Trace::from_text(&trace.to_text()).unwrap();
    assert_eq!(back, trace);
}

/// Writes to the same address back-to-back are cancelled by the WaW hazard;
/// account for them when comparing completion counts.
fn count_cancelled(_trace: &Trace) -> usize {
    // The controller acknowledges cancelled writes with a completion too,
    // so nothing is actually missing; kept for documentation value.
    0
}
