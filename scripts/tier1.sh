#!/usr/bin/env bash
# Tier-1 verification gate: format, lint, hermetic release build, full test
# suite. The workspace has zero external dependencies, so everything runs
# --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --offline --workspace -- -D warnings
cargo build --release --offline

# In-repo static analysis gate (fp-lint): determinism, poison-tolerance,
# and registry invariants (rule catalog in DESIGN.md §12). The binary
# exits nonzero on any unallowed finding; the greps guard the machine
# report's shape and the zero-findings verdict. Runs before the test
# suite and the smoke gates so invariant violations fail fast.
cargo run --release --offline -q -p fp-lint -- --format json --out results/LINT.json
grep -q '"tool":"fp-lint"' results/LINT.json
grep -q '"findings":0' results/LINT.json

cargo test -q --offline

# Documentation gate: every public item is documented (workspace crates set
# #![warn(missing_docs)]) and no rustdoc warnings (broken intra-doc links,
# invalid code fences) slip through.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline -q

# Perf-gate smoke check: the gate must run and emit valid JSON (it
# validates via fp_stats::json::validate and exits nonzero otherwise).
# No timing threshold here — wall-clock numbers are tracked across PRs in
# BENCH_perf.json, not gated in CI.
tmp_perf="$(mktemp)"
cargo run --release --offline -q -p fp-bench --bin perf_gate -- --fast --out "$tmp_perf" >/dev/null
rm -f "$tmp_perf"

# Serving-layer smoke check: 10k closed-loop requests through fp-service
# (shards {1,2}, small tree). The binary self-validates its JSON and
# asserts the 1->N simulated-throughput scaling invariant; a bare sanity
# grep here guards against an empty or truncated report file.
tmp_svc="$(mktemp)"
cargo run --release --offline -q -p fp-bench --bin service_bench -- --smoke --out "$tmp_svc" >/dev/null
grep -q '"bench":"service_bench"' "$tmp_svc"
rm -f "$tmp_svc"

# Scheme-agnostic serving: the same shard worker must also serve the
# traditional Path ORAM engine end to end (selected via the shared engine
# registry), proving the service layer is not fork-specific.
tmp_svc_trad="$(mktemp)"
cargo run --release --offline -q -p fp-bench --bin service_bench -- --smoke --scheme traditional --out "$tmp_svc_trad" >/dev/null
grep -q '"scheme":"traditional"' "$tmp_svc_trad"
rm -f "$tmp_svc_trad"

# Fault-injection smoke check: a degraded-mode run (transient integrity
# faults at 0.1% per access, deep retry budget) must complete, emit valid
# JSON, and actually have injected and retried faults — proving the
# FaultInjector wrapper and the health/fault stats plumbing end to end.
tmp_svc_fault="$(mktemp)"
cargo run --release --offline -q -p fp-bench --bin service_bench -- --smoke --fault-rate 0.01 --out "$tmp_svc_fault" >/dev/null
grep -q '"bench":"service_bench"' "$tmp_svc_fault"
grep -Eq '"faults_injected":[1-9]' "$tmp_svc_fault"
grep -Eq '"fault_retries":[1-9]' "$tmp_svc_fault"
rm -f "$tmp_svc_fault"

# Cross-request coalescing smoke check: replay the same seeded Zipfian
# hotspot schedule with and without the per-shard coalescing index. The
# coalesced run must actually coalesce (nonzero coalesced_reads) and
# execute strictly fewer ORAM accesses while serving exactly as many
# requests. Per-request data equivalence and the accounting ledger are
# property-tested in tests/service_level.rs; this gates the end-to-end
# win through the real binary. First grep match = the aggregate object
# (per_shard rows come later in the report).
tmp_zipf_plain="$(mktemp)"
tmp_zipf_coal="$(mktemp)"
cargo run --release --offline -q -p fp-bench --bin service_bench -- --smoke --zipf --shards 4 --out "$tmp_zipf_plain" >/dev/null
cargo run --release --offline -q -p fp-bench --bin service_bench -- --smoke --zipf --coalesce --shards 4 --out "$tmp_zipf_coal" >/dev/null
grep -q '"workload":"zipf-hot"' "$tmp_zipf_plain"
grep -Eq '"coalesced_reads":[1-9]' "$tmp_zipf_coal"
acc_plain="$(grep -o '"oram_accesses":[0-9]*' "$tmp_zipf_plain" | head -1 | cut -d: -f2)"
acc_coal="$(grep -o '"oram_accesses":[0-9]*' "$tmp_zipf_coal" | head -1 | cut -d: -f2)"
done_plain="$(grep -o '"completed":[0-9]*' "$tmp_zipf_plain" | head -1 | cut -d: -f2)"
done_coal="$(grep -o '"completed":[0-9]*' "$tmp_zipf_coal" | head -1 | cut -d: -f2)"
[ "$done_plain" -gt 0 ] && [ "$done_plain" -eq "$done_coal" ]
[ "$acc_coal" -lt "$acc_plain" ]
rm -f "$tmp_zipf_plain" "$tmp_zipf_coal"

# Network front end smoke check: replay 2x2k requests over a real
# loopback socket (2 shards, 4 pipelined connections) and verify per-tag
# {status, data} equality against the in-process trace replay (--smoke
# implies --verify; the binary panics on any divergence, non-ok status,
# or open ledger). The greps guard the report shape: verified rows and
# live wire counters with zero protocol errors.
tmp_net="$(mktemp)"
cargo run --release --offline -q -p fp-bench --bin net_bench -- --smoke --out "$tmp_net" >/dev/null
grep -q '"bench":"net_bench"' "$tmp_net"
grep -q '"verified_against_trace":true' "$tmp_net"
grep -Eq '"net_frames_in":[1-9]' "$tmp_net"
grep -q '"net_protocol_errors":0' "$tmp_net"
rm -f "$tmp_net"
echo "tier1 OK"
