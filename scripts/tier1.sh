#!/usr/bin/env bash
# Tier-1 verification gate: format, lint, hermetic release build, full test
# suite. The workspace has zero external dependencies, so everything runs
# --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --offline --workspace -- -D warnings
cargo build --release --offline
cargo test -q --offline
