#!/usr/bin/env bash
# Tier-1 verification gate: format, lint, hermetic release build, full test
# suite. The workspace has zero external dependencies, so everything runs
# --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --offline --workspace -- -D warnings
cargo build --release --offline
cargo test -q --offline

# Perf-gate smoke check: the gate must run and emit valid JSON (it
# validates via fp_stats::json::validate and exits nonzero otherwise).
# No timing threshold here — wall-clock numbers are tracked across PRs in
# BENCH_perf.json, not gated in CI.
tmp_perf="$(mktemp)"
cargo run --release --offline -q -p fp-bench --bin perf_gate -- --fast --out "$tmp_perf" >/dev/null
rm -f "$tmp_perf"
echo "tier1 OK"
